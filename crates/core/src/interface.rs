//! Interface transfer models: unpipelined (per-byte) vs pipelined
//! (fixed) offload latency.
//!
//! §3 notes that the unpipelined offload latency distribution "can be
//! found by multiplying the offload latency of a single byte with g for
//! each offload. When data offload is pipelined, L is independent of g;
//! we do not study pipelined offloads as our existing systems use
//! unpipelined offloads." This module implements both, as the paper's
//! natural extension: a transfer model maps granularity to the `L` the
//! equations consume, and the break-even analysis generalizes
//! accordingly.

use serde::{Deserialize, Serialize};

use crate::breakeven::{BreakEven, OffloadContext};
use crate::complexity::KernelCost;
use crate::error::{ensure, Result};
use crate::units::{Bytes, Cycles, CyclesPerByte};

/// How offload bytes cross the host↔accelerator interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "kind")]
pub enum TransferModel {
    /// Pipelined: a fixed per-offload latency independent of `g` (the
    /// accelerator starts consuming bytes as they stream in).
    Pipelined {
        /// Fixed transfer latency per offload, in cycles.
        latency: Cycles,
    },
    /// Unpipelined: the accelerator needs the whole block, so the
    /// transfer costs `base + per_byte·g` cycles.
    Unpipelined {
        /// Fixed per-offload portion (doorbell, descriptor, first flit).
        base: Cycles,
        /// Per-byte streaming cost across the interface.
        per_byte: CyclesPerByte,
    },
}

impl TransferModel {
    /// A pipelined interface with the given fixed latency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] for negative or
    /// non-finite latencies.
    pub fn pipelined(latency: f64) -> Result<Self> {
        ensure(
            latency.is_finite() && latency >= 0.0,
            "L",
            latency,
            "transfer latency must be finite and non-negative",
        )?;
        Ok(TransferModel::Pipelined {
            latency: Cycles::new(latency),
        })
    }

    /// An unpipelined interface: `base + per_byte · g`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] for negative or
    /// non-finite components.
    pub fn unpipelined(base: f64, per_byte: f64) -> Result<Self> {
        ensure(
            base.is_finite() && base >= 0.0,
            "L",
            base,
            "transfer base must be finite and non-negative",
        )?;
        ensure(
            per_byte.is_finite() && per_byte >= 0.0,
            "Lb",
            per_byte,
            "per-byte transfer cost must be finite and non-negative",
        )?;
        Ok(TransferModel::Unpipelined {
            base: Cycles::new(base),
            per_byte: CyclesPerByte::new(per_byte),
        })
    }

    /// Transfer cycles for a `g`-byte offload.
    #[must_use]
    pub fn latency_for(&self, g: Bytes) -> Cycles {
        match *self {
            TransferModel::Pipelined { latency } => latency,
            TransferModel::Unpipelined { base, per_byte } => base + per_byte * g,
        }
    }

    /// The *average* `L` over a granularity distribution with mean
    /// `mean_bytes` — what Table 5's scalar `L` parameter represents.
    #[must_use]
    pub fn mean_latency(&self, mean_bytes: Bytes) -> Cycles {
        self.latency_for(mean_bytes)
    }

    /// Per-byte slope of the transfer cost (zero when pipelined).
    #[must_use]
    pub fn slope(&self) -> CyclesPerByte {
        match *self {
            TransferModel::Pipelined { .. } => CyclesPerByte::ZERO,
            TransferModel::Unpipelined { per_byte, .. } => per_byte,
        }
    }

    /// Fixed (granularity-independent) portion of the transfer cost.
    #[must_use]
    pub fn fixed(&self) -> Cycles {
        match *self {
            TransferModel::Pipelined { latency } => latency,
            TransferModel::Unpipelined { base, .. } => base,
        }
    }
}

/// Break-even granularity for a **linear-complexity** kernel under a
/// granularity-dependent transfer model.
///
/// Generalizes eqn (2): the offload is lucrative when
/// `Cb·g > keep·Cb·g/A + o0 + Q + k·o1 + base + slope·g`, i.e. when the
/// *net* per-byte saving `Cb·(1 − keep/A) − slope` recoups the fixed
/// overheads. A transfer slope at or above the per-byte saving makes
/// offloading unprofitable at every granularity.
///
/// The context's `overheads.interface` field is ignored in favor of
/// `transfer`.
#[must_use]
pub fn throughput_breakeven_with_transfer(
    cost: &KernelCost,
    ctx: &OffloadContext,
    transfer: &TransferModel,
) -> BreakEven {
    // Per-byte saving net of the transfer slope. `transfer` bytes cross
    // the host path per the same routing rules as scalar L: reuse the
    // context by checking whether a unit of interface latency reaches the
    // throughput path at all.
    let unit_ctx = OffloadContext {
        overheads: crate::params::OffloadOverheads::new(0.0, 1.0, 0.0, 0.0),
        ..*ctx
    };
    let transfer_reaches_path = crate::model::throughput_overhead_per_offload_raw(
        unit_ctx.overheads,
        unit_ctx.design,
        unit_ctx.strategy,
        unit_ctx.driver,
    )
    .get()
        > 0.0;

    let keep = if ctx.design.accelerator_time_on_throughput_path() {
        1.0 / ctx.peak_speedup
    } else {
        0.0
    };
    let per_byte_saving = cost.cycles_per_byte.get() * (1.0 - keep)
        - if transfer_reaches_path {
            transfer.slope().get()
        } else {
            0.0
        };
    if per_byte_saving <= 0.0 {
        return BreakEven::Never;
    }
    let ovh = ctx.overheads;
    let fixed = ovh.setup.get()
        + ovh.queueing.get()
        + ovh.thread_switch.get() * ctx.design.thread_switches_on_throughput_path()
        + if transfer_reaches_path {
            transfer.fixed().get()
        } else {
            0.0
        };
    if fixed <= 0.0 {
        return BreakEven::Always;
    }
    BreakEven::AtLeast(Bytes::new(fixed / per_byte_saving))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OffloadOverheads;
    use crate::strategy::AccelerationStrategy;
    use crate::threading::ThreadingDesign;
    use crate::units::{bytes, cycles_per_byte};

    fn ctx(design: ThreadingDesign, strategy: AccelerationStrategy) -> OffloadContext {
        OffloadContext::new(OffloadOverheads::new(100.0, 0.0, 0.0, 0.0), 8.0, design, strategy)
    }

    #[test]
    fn construction_validates() {
        assert!(TransferModel::pipelined(-1.0).is_err());
        assert!(TransferModel::unpipelined(0.0, f64::NAN).is_err());
        assert!(TransferModel::pipelined(500.0).is_ok());
    }

    #[test]
    fn latency_scales_only_when_unpipelined() {
        let pipelined = TransferModel::pipelined(500.0).unwrap();
        let unpipelined = TransferModel::unpipelined(100.0, 2.0).unwrap();
        assert_eq!(pipelined.latency_for(bytes(64.0)), pipelined.latency_for(bytes(64_000.0)));
        assert_eq!(unpipelined.latency_for(bytes(100.0)).get(), 300.0);
        assert_eq!(unpipelined.latency_for(bytes(1_000.0)).get(), 2_100.0);
        assert_eq!(pipelined.slope().get(), 0.0);
        assert_eq!(unpipelined.slope().get(), 2.0);
        assert_eq!(unpipelined.fixed().get(), 100.0);
    }

    #[test]
    fn pipelined_matches_scalar_breakeven() {
        // A pipelined transfer is exactly the scalar-L model: compare
        // against the standard break-even with L = 500.
        let cost = KernelCost::linear(cycles_per_byte(5.0));
        let scalar_ctx = OffloadContext::new(
            OffloadOverheads::new(100.0, 500.0, 0.0, 0.0),
            8.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let scalar = crate::breakeven::throughput_breakeven(&cost, &scalar_ctx)
            .threshold()
            .unwrap();
        let transfer = TransferModel::pipelined(500.0).unwrap();
        let generalized = throughput_breakeven_with_transfer(
            &cost,
            &ctx(ThreadingDesign::Sync, AccelerationStrategy::OffChip),
            &transfer,
        )
        .threshold()
        .unwrap();
        assert!((scalar.get() - generalized.get()).abs() < 1e-9);
    }

    #[test]
    fn transfer_slope_raises_breakeven() {
        let cost = KernelCost::linear(cycles_per_byte(5.0));
        let c = ctx(ThreadingDesign::Sync, AccelerationStrategy::OffChip);
        let fast = TransferModel::unpipelined(500.0, 0.5).unwrap();
        let slow = TransferModel::unpipelined(500.0, 3.0).unwrap();
        let g_fast = throughput_breakeven_with_transfer(&cost, &c, &fast)
            .threshold()
            .unwrap();
        let g_slow = throughput_breakeven_with_transfer(&cost, &c, &slow)
            .threshold()
            .unwrap();
        assert!(g_slow > g_fast);
    }

    #[test]
    fn slope_above_saving_is_never_lucrative() {
        // Cb(1 − 1/A) = 5·7/8 = 4.375; a 5-cycles/B interface eats the
        // entire saving.
        let cost = KernelCost::linear(cycles_per_byte(5.0));
        let c = ctx(ThreadingDesign::Sync, AccelerationStrategy::OffChip);
        let hopeless = TransferModel::unpipelined(0.0, 5.0).unwrap();
        assert_eq!(
            throughput_breakeven_with_transfer(&cost, &c, &hopeless),
            BreakEven::Never
        );
    }

    #[test]
    fn remote_async_ignores_transfer_entirely() {
        // For remote async, L never reaches the host path, so even an
        // absurd transfer slope leaves the o0-only break-even.
        let cost = KernelCost::linear(cycles_per_byte(5.0));
        let c = ctx(ThreadingDesign::AsyncSameThread, AccelerationStrategy::Remote);
        let absurd = TransferModel::unpipelined(1e9, 1e3).unwrap();
        let g = throughput_breakeven_with_transfer(&cost, &c, &absurd)
            .threshold()
            .unwrap();
        // Cb·g > o0 → g > 20.
        assert!((g.get() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_fixed_cost_is_always_lucrative() {
        let cost = KernelCost::linear(cycles_per_byte(5.0));
        let c = OffloadContext::new(
            OffloadOverheads::NONE,
            8.0,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let streaming = TransferModel::unpipelined(0.0, 1.0).unwrap();
        assert_eq!(
            throughput_breakeven_with_transfer(&cost, &c, &streaming),
            BreakEven::Always
        );
    }

    #[test]
    fn mean_latency_uses_mean_bytes() {
        let t = TransferModel::unpipelined(100.0, 2.0).unwrap();
        assert_eq!(t.mean_latency(bytes(425.0)).get(), 950.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = TransferModel::unpipelined(100.0, 2.0).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("unpipelined"));
        let back: TransferModel = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
