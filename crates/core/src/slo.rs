//! Latency-SLO guardrails.
//!
//! §3: "Service operators can use the... latency reduction equation to
//! ensure that the latency SLO is not violated." The latency denominator
//! `CL/C` is linear in every overhead parameter, so the largest tolerable
//! value of each — interface latency, queueing, offload rate — solves in
//! closed form. This module provides those inversions plus the
//! throughput-vs-latency trade-off detector the paper highlights for
//! Sync-OS (a design can gain QPS while *slowing individual requests*).

use serde::{Deserialize, Serialize};

use crate::error::{ensure, Result};
use crate::model::Scenario;
use crate::units::Cycles;

/// A per-request latency requirement, expressed as the minimum
/// acceptable latency *reduction* `C/CL`.
///
/// `LatencySlo::no_regression()` (ratio 1.0) demands acceleration never
/// slow requests down; ratios above 1 demand improvement; ratios below 1
/// tolerate bounded slowdown (e.g. `0.95` allows requests to get ~5%
/// slower in exchange for throughput).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySlo {
    min_reduction: f64,
}

impl LatencySlo {
    /// Requires a latency reduction of at least `ratio` (`C/CL ≥ ratio`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] unless
    /// `ratio` is finite and positive.
    pub fn at_least(ratio: f64) -> Result<Self> {
        ensure(
            ratio.is_finite() && ratio > 0.0,
            "slo",
            ratio,
            "latency-reduction requirement must be finite and positive",
        )?;
        Ok(Self {
            min_reduction: ratio,
        })
    }

    /// The "do no harm" SLO: per-request latency must not regress.
    #[must_use]
    pub fn no_regression() -> Self {
        Self { min_reduction: 1.0 }
    }

    /// The required minimum `C/CL`.
    #[must_use]
    pub fn min_reduction(&self) -> f64 {
        self.min_reduction
    }

    /// Whether a scenario meets this SLO.
    #[must_use]
    pub fn is_met_by(&self, scenario: &Scenario) -> bool {
        self.is_met_by_ratio(scenario.estimate().latency_reduction)
    }

    /// Whether a *measured* latency reduction (`C/CL`, or any
    /// baseline-over-treatment latency ratio, e.g. p99 under faults)
    /// meets this SLO — the simulator-side counterpart of
    /// [`is_met_by`](Self::is_met_by).
    #[must_use]
    pub fn is_met_by_ratio(&self, reduction: f64) -> bool {
        reduction >= self.min_reduction - 1e-12
    }
}

/// The latency-path budget available for per-offload overheads:
/// `C/n · (1/slo − (1−α) − [αC/A if on latency path])`, in cycles per
/// offload. Negative means the SLO is infeasible for this scenario shape
/// even with zero overheads.
fn per_offload_latency_budget(scenario: &Scenario, slo: LatencySlo) -> f64 {
    let p = &scenario.params;
    let alpha = p.kernel_fraction();
    let mut base = 1.0 - alpha;
    if crate::model::accelerator_time_in_latency(scenario.design, scenario.strategy) {
        base += alpha / p.peak_speedup();
    }
    (1.0 / slo.min_reduction - base) * p.host_cycles().get() / p.offloads()
}

/// The largest interface latency `L` (cycles) the scenario tolerates
/// while meeting the SLO, holding every other parameter fixed.
///
/// Returns `None` when no `L ≥ 0` satisfies the SLO (the other overheads
/// already blow the budget).
#[must_use]
pub fn max_interface_latency(scenario: &Scenario, slo: LatencySlo) -> Option<Cycles> {
    let ovh = scenario.params.overheads();
    let switches = scenario.design.thread_switches_on_latency_path();
    let budget = per_offload_latency_budget(scenario, slo)
        - ovh.setup.get()
        - ovh.queueing.get()
        - ovh.thread_switch.get() * switches;
    (budget >= 0.0).then(|| Cycles::new(budget))
}

/// The largest offload count `n` per window the scenario tolerates while
/// meeting the SLO (e.g. how much traffic a shared accelerator may take
/// before requests miss their latency target).
///
/// Returns `None` when the per-offload overhead is zero (any `n` works)
/// wrapped as `f64::INFINITY`, or when even `n = 0` misses the SLO.
#[must_use]
pub fn max_offload_rate(scenario: &Scenario, slo: LatencySlo) -> Option<f64> {
    let p = &scenario.params;
    let alpha = p.kernel_fraction();
    let mut base = 1.0 - alpha;
    if crate::model::accelerator_time_in_latency(scenario.design, scenario.strategy) {
        base += alpha / p.peak_speedup();
    }
    let headroom = 1.0 / slo.min_reduction - base;
    if headroom < 0.0 {
        return None;
    }
    let ovh = p.overheads();
    let per_offload = ovh.setup.get()
        + ovh.interface.get()
        + ovh.queueing.get()
        + ovh.thread_switch.get() * scenario.design.thread_switches_on_latency_path();
    if per_offload <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(headroom * p.host_cycles().get() / per_offload)
}

/// The minimum accelerator speedup `A` meeting the SLO (only meaningful
/// when the accelerator's time is on the latency path).
///
/// Returns `None` when no finite `A` suffices (overheads alone violate
/// the SLO) and `Some(1.0)` when even `A = 1` meets it.
#[must_use]
pub fn min_peak_speedup(scenario: &Scenario, slo: LatencySlo) -> Option<f64> {
    if !crate::model::accelerator_time_in_latency(scenario.design, scenario.strategy) {
        // αC/A never reaches the request path: A is unconstrained.
        return Some(1.0);
    }
    let p = &scenario.params;
    let alpha = p.kernel_fraction();
    let ovh = p.overheads();
    let per_offload = ovh.setup.get()
        + ovh.interface.get()
        + ovh.queueing.get()
        + ovh.thread_switch.get() * scenario.design.thread_switches_on_latency_path();
    let rest = (1.0 - alpha) + p.offloads() * per_offload / p.host_cycles().get();
    let headroom = 1.0 / slo.min_reduction - rest;
    if headroom <= 0.0 {
        return None;
    }
    Some((alpha / headroom).max(1.0))
}

/// The §3 Sync-OS hazard: the design gains throughput while *increasing*
/// per-request latency ("making it feasible to incur a throughput gain
/// at the cost of a per-request latency slowdown").
#[must_use]
pub fn gains_throughput_but_slows_requests(scenario: &Scenario) -> bool {
    let est = scenario.estimate();
    est.improves_throughput() && !est.reduces_latency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DriverMode;
    use crate::params::ModelParams;
    use crate::strategy::AccelerationStrategy;
    use crate::threading::ThreadingDesign;

    fn scenario(l: f64, o1: f64, a: f64, design: ThreadingDesign) -> Scenario {
        let params = ModelParams::builder()
            .host_cycles(1e9)
            .kernel_fraction(0.2)
            .offloads(10_000.0)
            .setup_cycles(20.0)
            .interface_cycles(l)
            .thread_switch_cycles(o1)
            .peak_speedup(a)
            .build()
            .unwrap();
        Scenario::new(params, design, AccelerationStrategy::OffChip)
            .with_driver(DriverMode::AwaitsAck)
    }

    #[test]
    fn slo_construction() {
        assert!(LatencySlo::at_least(1.05).is_ok());
        assert!(LatencySlo::at_least(0.0).is_err());
        assert!(LatencySlo::at_least(f64::NAN).is_err());
        assert_eq!(LatencySlo::no_regression().min_reduction(), 1.0);
    }

    #[test]
    fn measured_ratios_check_against_the_same_boundary() {
        let slo = LatencySlo::at_least(0.5).unwrap();
        assert!(slo.is_met_by_ratio(0.5));
        assert!(slo.is_met_by_ratio(1.2));
        assert!(!slo.is_met_by_ratio(0.49));
        assert!(!slo.is_met_by_ratio(f64::NAN));
    }

    #[test]
    fn max_interface_latency_is_the_boundary() {
        let slo = LatencySlo::no_regression();
        let s = scenario(1_000.0, 0.0, 8.0, ThreadingDesign::Sync);
        let max_l = max_interface_latency(&s, slo).expect("feasible").get();
        // Rebuild at the boundary and a hair beyond.
        let rebuild = |l: f64| scenario(l, 0.0, 8.0, ThreadingDesign::Sync);
        assert!(slo.is_met_by(&rebuild(max_l)));
        assert!(!slo.is_met_by(&rebuild(max_l * 1.01)));
        // The boundary lies above the configured L (which meets the SLO).
        assert!(slo.is_met_by(&s));
        assert!(max_l > 1_000.0);
    }

    #[test]
    fn infeasible_slo_returns_none() {
        // Demand a 2x latency reduction from an A = 2 accelerator on 20%
        // of cycles: impossible (ideal is 1/(0.8 + 0.1) ≈ 1.11).
        let s = scenario(0.0, 0.0, 2.0, ThreadingDesign::Sync);
        let slo = LatencySlo::at_least(2.0).unwrap();
        assert!(max_interface_latency(&s, slo).is_none());
        assert!(max_offload_rate(&s, slo).is_none());
        assert!(min_peak_speedup(&s, slo).is_none());
    }

    #[test]
    fn max_offload_rate_boundary() {
        let slo = LatencySlo::no_regression();
        let s = scenario(2_000.0, 0.0, 8.0, ThreadingDesign::Sync);
        let max_n = max_offload_rate(&s, slo).expect("feasible");
        assert!(max_n > 10_000.0, "configured n meets the SLO");
        let at_boundary = Scenario::new(
            s.params.with_offloads(max_n).unwrap(),
            s.design,
            s.strategy,
        );
        let est = at_boundary.estimate();
        assert!((est.latency_reduction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_overhead_tolerates_any_rate() {
        let s = {
            let params = ModelParams::builder()
                .host_cycles(1e9)
                .kernel_fraction(0.2)
                .offloads(10.0)
                .peak_speedup(8.0)
                .build()
                .unwrap();
            Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip)
        };
        assert_eq!(
            max_offload_rate(&s, LatencySlo::no_regression()),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn min_peak_speedup_boundary() {
        let slo = LatencySlo::at_least(1.05).unwrap();
        let s = scenario(500.0, 0.0, 8.0, ThreadingDesign::Sync);
        let min_a = min_peak_speedup(&s, slo).expect("feasible");
        assert!(min_a > 1.0);
        let rebuild = |a: f64| scenario(500.0, 0.0, a, ThreadingDesign::Sync);
        assert!(slo.is_met_by(&rebuild(min_a * 1.01)));
        assert!(!slo.is_met_by(&rebuild(min_a * 0.9)));
    }

    #[test]
    fn async_designs_do_not_constrain_a_for_remote() {
        let params = ModelParams::builder()
            .host_cycles(1e9)
            .kernel_fraction(0.2)
            .offloads(100.0)
            .setup_cycles(10.0)
            .peak_speedup(1.0)
            .build()
            .unwrap();
        let s = Scenario::new(
            params,
            ThreadingDesign::AsyncNoResponse,
            AccelerationStrategy::Remote,
        );
        assert_eq!(min_peak_speedup(&s, LatencySlo::no_regression()), Some(1.0));
    }

    #[test]
    fn sync_os_can_gain_throughput_while_slowing_requests() {
        // Large o1 with a posted driver: the throughput path drops (L+Q)
        // but the latency path keeps αC/A + o1, so requests slow down
        // while QPS rises — the §3 hazard.
        let params = ModelParams::builder()
            .host_cycles(1e9)
            .kernel_fraction(0.2)
            .offloads(10_000.0)
            .interface_cycles(900.0)
            .thread_switch_cycles(8_000.0)
            .peak_speedup(1.3)
            .build()
            .unwrap();
        let s = Scenario::new(params, ThreadingDesign::SyncOs, AccelerationStrategy::Remote);
        let est = s.estimate();
        assert!(est.improves_throughput(), "throughput {:?}", est);
        assert!(!est.reduces_latency(), "latency {:?}", est);
        assert!(gains_throughput_but_slows_requests(&s));
        // A plain Sync design never exhibits the hazard (paths coincide).
        let sync = scenario(100.0, 0.0, 8.0, ThreadingDesign::Sync);
        assert!(!gains_throughput_but_slows_requests(&sync));
    }
}
