//! Parameter-file support matching the paper's artifact workflow
//! (Appendix A.5): "(a) identify model parameters for the accelerator
//! under test, (b) input these model parameters into a configuration
//! file, and (c) run the Accelerometer model."
//!
//! Configuration files are JSON. A file holds one or more named scenarios
//! using the paper's parameter notation (`C`, `alpha`, `n`, `o0`, `L`,
//! `Q`, `o1`, `A`) plus the threading design and strategy:
//!
//! ```json
//! {
//!   "scenarios": [
//!     {
//!       "name": "aes-ni-cache1",
//!       "c": 2.0e9, "alpha": 0.165844, "n": 298951,
//!       "o0": 10, "l": 3, "q": 0, "o1": 0, "a": 6,
//!       "design": "sync", "strategy": "on-chip"
//!     }
//!   ]
//! }
//! ```

use std::io::Read;

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, Result};
use crate::model::{DriverMode, Scenario};
use crate::params::ModelParams;
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;

/// One scenario in a configuration file, using Table 5 notation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Human-readable scenario name.
    pub name: String,
    /// `C`: host cycles per accounting window.
    pub c: f64,
    /// `α`: kernel fraction of host cycles.
    pub alpha: f64,
    /// `n`: lucrative offloads per window.
    pub n: f64,
    /// `o0`: setup cycles per offload.
    #[serde(default)]
    pub o0: f64,
    /// `L`: interface cycles per offload.
    #[serde(default)]
    pub l: f64,
    /// `Q`: mean queueing cycles per offload.
    #[serde(default)]
    pub q: f64,
    /// `o1`: thread-switch cycles.
    #[serde(default)]
    pub o1: f64,
    /// `A`: peak accelerator speedup.
    pub a: f64,
    /// Threading design.
    pub design: ThreadingDesign,
    /// Acceleration strategy.
    pub strategy: AccelerationStrategy,
    /// Optional driver-mode override (defaults from the strategy).
    #[serde(default)]
    pub driver: Option<DriverMode>,
}

impl ScenarioConfig {
    /// Converts the configuration into an evaluable [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if any parameter is
    /// outside its domain.
    pub fn to_scenario(&self) -> Result<Scenario> {
        let params = ModelParams::builder()
            .host_cycles(self.c)
            .kernel_fraction(self.alpha)
            .offloads(self.n)
            .setup_cycles(self.o0)
            .interface_cycles(self.l)
            .queueing_cycles(self.q)
            .thread_switch_cycles(self.o1)
            .peak_speedup(self.a)
            .build()?;
        let mut scenario = Scenario::new(params, self.design, self.strategy);
        if let Some(driver) = self.driver {
            scenario = scenario.with_driver(driver);
        }
        Ok(scenario)
    }

    /// Builds a config back from a scenario, for round-tripping results.
    #[must_use]
    pub fn from_scenario(name: impl Into<String>, scenario: &Scenario) -> Self {
        let p = &scenario.params;
        let ovh = p.overheads();
        Self {
            name: name.into(),
            c: p.host_cycles().get(),
            alpha: p.kernel_fraction(),
            n: p.offloads(),
            o0: ovh.setup.get(),
            l: ovh.interface.get(),
            q: ovh.queueing.get(),
            o1: ovh.thread_switch.get(),
            a: p.peak_speedup(),
            design: scenario.design,
            strategy: scenario.strategy,
            driver: Some(scenario.driver),
        }
    }
}

/// A configuration file: a set of named scenarios.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigFile {
    /// The scenarios to evaluate.
    pub scenarios: Vec<ScenarioConfig>,
}

impl ConfigFile {
    /// Parses a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| ModelError::Config(e.to_string()))
    }

    /// Parses a configuration from a reader (e.g. an open file).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] on I/O or parse failure.
    pub fn from_reader<R: Read>(mut reader: R) -> Result<Self> {
        let mut buf = String::new();
        reader
            .read_to_string(&mut buf)
            .map_err(|e| ModelError::Config(e.to_string()))?;
        Self::from_json(&buf)
    }

    /// Serializes the configuration to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] if serialization fails (it cannot
    /// for well-formed configs).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| ModelError::Config(e.to_string()))
    }

    /// Converts every entry into an evaluable scenario, pairing each with
    /// its name.
    ///
    /// # Errors
    ///
    /// Returns the first parameter error encountered.
    pub fn to_scenarios(&self) -> Result<Vec<(String, Scenario)>> {
        self.scenarios
            .iter()
            .map(|c| Ok((c.name.clone(), c.to_scenario()?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AES_JSON: &str = r#"{
        "scenarios": [{
            "name": "aes-ni-cache1",
            "c": 2.0e9, "alpha": 0.165844, "n": 298951,
            "o0": 10, "l": 3, "a": 6,
            "design": "sync", "strategy": "on-chip"
        }]
    }"#;

    #[test]
    fn parses_artifact_style_config() {
        let cfg = ConfigFile::from_json(AES_JSON).unwrap();
        assert_eq!(cfg.scenarios.len(), 1);
        let sc = &cfg.scenarios[0];
        assert_eq!(sc.name, "aes-ni-cache1");
        // Omitted overheads default to zero.
        assert_eq!(sc.q, 0.0);
        assert_eq!(sc.o1, 0.0);
        let (name, scenario) = cfg.to_scenarios().unwrap().remove(0);
        assert_eq!(name, "aes-ni-cache1");
        let est = scenario.estimate();
        assert!((est.throughput_gain_percent() - 15.7).abs() < 0.1);
    }

    #[test]
    fn rejects_malformed_json() {
        let err = ConfigFile::from_json("{not json").unwrap_err();
        assert!(matches!(err, ModelError::Config(_)));
    }

    #[test]
    fn rejects_invalid_parameters_at_conversion() {
        let cfg = ConfigFile::from_json(
            r#"{"scenarios": [{"name": "bad", "c": 1e9, "alpha": 2.0, "n": 1,
                "a": 6, "design": "sync", "strategy": "on-chip"}]}"#,
        )
        .unwrap();
        assert!(cfg.to_scenarios().is_err());
    }

    #[test]
    fn json_round_trip() {
        let cfg = ConfigFile::from_json(AES_JSON).unwrap();
        let json = cfg.to_json().unwrap();
        let back = ConfigFile::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn from_reader_works() {
        let cfg = ConfigFile::from_reader(AES_JSON.as_bytes()).unwrap();
        assert_eq!(cfg.scenarios.len(), 1);
    }

    #[test]
    fn scenario_round_trip_preserves_parameters() {
        let cfg = ConfigFile::from_json(AES_JSON).unwrap();
        let scenario = cfg.scenarios[0].to_scenario().unwrap();
        let back = ScenarioConfig::from_scenario("aes-ni-cache1", &scenario);
        assert_eq!(back.c, 2.0e9);
        assert_eq!(back.alpha, 0.165844);
        assert_eq!(back.driver, Some(scenario.driver));
        assert_eq!(back.to_scenario().unwrap().estimate(), scenario.estimate());
    }

    #[test]
    fn driver_override_is_honored() {
        let cfg = ConfigFile::from_json(
            r#"{"scenarios": [{"name": "x", "c": 1e9, "alpha": 0.2, "n": 100,
                "l": 500, "o1": 100, "a": 10,
                "design": "sync-os", "strategy": "off-chip",
                "driver": "posted"}]}"#,
        )
        .unwrap();
        let scenario = cfg.scenarios[0].to_scenario().unwrap();
        assert_eq!(scenario.driver, DriverMode::Posted);
    }
}
