//! Offload timelines: the host/interface/accelerator schedules of
//! Figs. 11–14.
//!
//! Each figure in §3 illustrates where one offload's cycles land for a
//! threading design. This module constructs those schedules symbolically
//! from a parameter set and renders them as ASCII, both for documentation
//! and as a structural cross-check of the model: the cycles each design
//! charges to the host here must equal what the equations charge (tested
//! in the integration suite).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::model::DriverMode;
use crate::params::OffloadOverheads;
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;
use crate::units::Cycles;

/// Which resource a timeline segment occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Lane {
    /// The host CPU core.
    Host,
    /// The host↔accelerator interface (PCIe link, network, etc.).
    Interface,
    /// The accelerator device.
    Accelerator,
}

/// What a timeline segment represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Activity {
    /// Useful host work (kernel or non-kernel logic).
    HostWork,
    /// `o0`: preparing the kernel for offload.
    Setup,
    /// The host core idling while awaiting the accelerator.
    Blocked,
    /// `o1`: an OS thread switch.
    ThreadSwitch,
    /// `L`: data moving across the interface.
    Transfer,
    /// `Q`: the offload waiting for the accelerator.
    Queue,
    /// `αC/A`-style accelerator execution.
    AcceleratorExec,
}

impl Activity {
    /// One-character glyph for ASCII rendering.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            Activity::HostWork => '#',
            Activity::Setup => 'o',
            Activity::Blocked => '.',
            Activity::ThreadSwitch => 'x',
            Activity::Transfer => 'L',
            Activity::Queue => 'Q',
            Activity::AcceleratorExec => 'A',
        }
    }

    /// Whether the segment consumes host cycles that the model charges to
    /// the throughput path.
    #[must_use]
    pub fn charges_host_throughput(self) -> bool {
        matches!(
            self,
            Activity::Setup | Activity::Blocked | Activity::ThreadSwitch
        )
    }
}

/// One contiguous interval of activity on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The occupied resource.
    pub lane: Lane,
    /// Start time, in cycles from the offload's initiation.
    pub start: Cycles,
    /// End time (exclusive).
    pub end: Cycles,
    /// The activity performed.
    pub activity: Activity,
}

impl Segment {
    /// Segment duration in cycles.
    #[must_use]
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// The inputs for drawing one offload's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineSpec {
    /// Host cycles the kernel would take if executed locally.
    pub kernel_cycles: Cycles,
    /// The accelerator's peak speedup (`A`).
    pub peak_speedup: f64,
    /// Per-offload overheads.
    pub overheads: OffloadOverheads,
    /// Threading design.
    pub design: ThreadingDesign,
    /// Acceleration strategy.
    pub strategy: AccelerationStrategy,
    /// Driver acknowledgement behaviour (Sync-OS only).
    pub driver: DriverMode,
}

/// The schedule of one offload across the three lanes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// The spec this timeline was built from.
    pub spec: TimelineSpec,
    segments: Vec<Segment>,
}

impl Timeline {
    /// Builds the Fig. 11–14 schedule for one offload.
    #[must_use]
    pub fn build(spec: TimelineSpec) -> Self {
        let ovh = spec.overheads;
        let accel_time = spec.kernel_cycles / spec.peak_speedup;
        let mut segments = Vec::new();
        let mut push = |lane: Lane, start: Cycles, dur: Cycles, activity: Activity| -> Cycles {
            if dur.get() > 0.0 {
                segments.push(Segment {
                    lane,
                    start,
                    end: start + dur,
                    activity,
                });
            }
            start + dur
        };

        // Host: setup, then design-specific behaviour.
        let t_setup_end = push(Lane::Host, Cycles::ZERO, ovh.setup, Activity::Setup);
        // Interface: transfer then queueing, starting when setup completes.
        let t_transfer_end = push(Lane::Interface, t_setup_end, ovh.interface, Activity::Transfer);
        let t_queue_end = push(Lane::Interface, t_transfer_end, ovh.queueing, Activity::Queue);
        // Accelerator: executes after the data arrives and the queue drains.
        let t_accel_end = push(Lane::Accelerator, t_queue_end, accel_time, Activity::AcceleratorExec);

        match spec.design {
            ThreadingDesign::Sync => {
                // Fig. 12: the core blocks until the accelerator responds.
                push(Lane::Host, t_setup_end, t_accel_end - t_setup_end, Activity::Blocked);
            }
            ThreadingDesign::SyncOs => {
                // Fig. 13: possibly await the ack, switch away, run another
                // thread, switch back when the response arrives.
                let ack_wait = match (spec.strategy, spec.driver) {
                    (AccelerationStrategy::Remote, _) | (_, DriverMode::Posted) => Cycles::ZERO,
                    (_, DriverMode::AwaitsAck) => ovh.interface + ovh.queueing,
                };
                let mut t = push(Lane::Host, t_setup_end, ack_wait, Activity::Blocked);
                t = push(Lane::Host, t, ovh.thread_switch, Activity::ThreadSwitch);
                // Another thread runs until the response arrives.
                let other_work = (t_accel_end - t).max(Cycles::ZERO);
                t = push(Lane::Host, t, other_work, Activity::HostWork);
                push(Lane::Host, t, ovh.thread_switch, Activity::ThreadSwitch);
            }
            ThreadingDesign::AsyncSameThread | ThreadingDesign::AsyncNoResponse => {
                // Fig. 14: the host keeps working through the offload.
                let transfer_on_host = match spec.strategy {
                    AccelerationStrategy::Remote => Cycles::ZERO,
                    _ => ovh.interface + ovh.queueing,
                };
                let t = push(Lane::Host, t_setup_end, transfer_on_host, Activity::Blocked);
                let remaining = (t_accel_end - t).max(Cycles::ZERO);
                push(Lane::Host, t, remaining, Activity::HostWork);
            }
            ThreadingDesign::AsyncDistinctThread => {
                let transfer_on_host = match spec.strategy {
                    AccelerationStrategy::Remote => Cycles::ZERO,
                    _ => ovh.interface + ovh.queueing,
                };
                let mut t = push(Lane::Host, t_setup_end, transfer_on_host, Activity::Blocked);
                let remaining = (t_accel_end - t).max(Cycles::ZERO);
                t = push(Lane::Host, t, remaining, Activity::HostWork);
                // A distinct response thread is scheduled to pick up the
                // completion: one switch.
                push(Lane::Host, t, ovh.thread_switch, Activity::ThreadSwitch);
            }
        }

        Self { spec, segments }
    }

    /// All segments in construction order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segments on a given lane.
    pub fn lane(&self, lane: Lane) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(move |s| s.lane == lane)
    }

    /// Total cycles the timeline occupies (the offload's makespan).
    #[must_use]
    pub fn makespan(&self) -> Cycles {
        self.segments
            .iter()
            .map(|s| s.end)
            .fold(Cycles::ZERO, Cycles::max)
    }

    /// Host cycles this offload charges to the throughput path (setup +
    /// blocked + thread switches), which must agree with the model's
    /// per-offload overhead accounting.
    #[must_use]
    pub fn host_overhead_cycles(&self) -> Cycles {
        self.lane(Lane::Host)
            .filter(|s| s.activity.charges_host_throughput())
            .map(Segment::duration)
            .sum()
    }

    /// Renders the timeline as fixed-width ASCII art, one row per lane.
    #[must_use]
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let span = self.makespan().get().max(1.0);
        let mut out = String::new();
        for (lane, label) in [
            (Lane::Host, "host       "),
            (Lane::Interface, "interface  "),
            (Lane::Accelerator, "accelerator"),
        ] {
            let mut row = vec![' '; width];
            for seg in self.lane(lane) {
                let a = ((seg.start.get() / span) * width as f64).floor() as usize;
                let b = ((seg.end.get() / span) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = seg.activity.glyph();
                }
            }
            let _ = writeln!(out, "{label} |{}|", row.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "legend: #=work o=setup(o0) .=wait L=transfer Q=queue x=switch(o1) A=accelerator"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::cycles;

    fn spec(design: ThreadingDesign) -> TimelineSpec {
        TimelineSpec {
            kernel_cycles: cycles(10_000.0),
            peak_speedup: 10.0,
            overheads: OffloadOverheads::new(100.0, 300.0, 50.0, 200.0),
            design,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::AwaitsAck,
        }
    }

    #[test]
    fn sync_blocks_for_entire_offload() {
        let t = Timeline::build(spec(ThreadingDesign::Sync));
        // Host overhead = o0 + (L + Q + accel) = 100 + 300 + 50 + 1000.
        assert!((t.host_overhead_cycles().get() - 1_450.0).abs() < 1e-9);
        let blocked: Vec<_> = t
            .lane(Lane::Host)
            .filter(|s| s.activity == Activity::Blocked)
            .collect();
        assert_eq!(blocked.len(), 1);
        // The blocked window covers the accelerator's execution.
        let accel = t
            .lane(Lane::Accelerator)
            .next()
            .expect("accelerator runs");
        assert!(blocked[0].start <= accel.start && blocked[0].end >= accel.end);
    }

    #[test]
    fn sync_os_has_two_switches_and_overlapped_work() {
        let t = Timeline::build(spec(ThreadingDesign::SyncOs));
        let switches = t
            .lane(Lane::Host)
            .filter(|s| s.activity == Activity::ThreadSwitch)
            .count();
        assert_eq!(switches, 2);
        // Host overhead = o0 + (L+Q ack wait) + 2*o1 = 100 + 350 + 400.
        assert!((t.host_overhead_cycles().get() - 850.0).abs() < 1e-9);
        // Useful work overlaps the accelerator execution.
        assert!(t
            .lane(Lane::Host)
            .any(|s| s.activity == Activity::HostWork));
    }

    #[test]
    fn sync_os_posted_driver_drops_ack_wait() {
        let mut s = spec(ThreadingDesign::SyncOs);
        s.driver = DriverMode::Posted;
        let t = Timeline::build(s);
        // Host overhead = o0 + 2*o1 only.
        assert!((t.host_overhead_cycles().get() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn async_same_thread_never_switches() {
        let t = Timeline::build(spec(ThreadingDesign::AsyncSameThread));
        assert!(t
            .lane(Lane::Host)
            .all(|s| s.activity != Activity::ThreadSwitch));
        // Host overhead = o0 + (L+Q) = 450 (eqn 6's per-offload term).
        assert!((t.host_overhead_cycles().get() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn async_distinct_thread_switches_once() {
        let t = Timeline::build(spec(ThreadingDesign::AsyncDistinctThread));
        let switches = t
            .lane(Lane::Host)
            .filter(|s| s.activity == Activity::ThreadSwitch)
            .count();
        assert_eq!(switches, 1);
    }

    #[test]
    fn remote_async_moves_transfer_off_host() {
        let mut s = spec(ThreadingDesign::AsyncSameThread);
        s.strategy = AccelerationStrategy::Remote;
        let t = Timeline::build(s);
        // Only o0 remains on the host.
        assert!((t.host_overhead_cycles().get() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn interface_carries_transfer_then_queue() {
        let t = Timeline::build(spec(ThreadingDesign::Sync));
        let iface: Vec<_> = t.lane(Lane::Interface).collect();
        assert_eq!(iface.len(), 2);
        assert_eq!(iface[0].activity, Activity::Transfer);
        assert_eq!(iface[1].activity, Activity::Queue);
        assert_eq!(iface[0].end, iface[1].start);
    }

    #[test]
    fn makespan_covers_all_segments() {
        let t = Timeline::build(spec(ThreadingDesign::Sync));
        let max_end = t
            .segments()
            .iter()
            .map(|s| s.end.get())
            .fold(0.0_f64, f64::max);
        assert_eq!(t.makespan().get(), max_end);
    }

    #[test]
    fn ascii_rendering_has_three_lanes_and_legend() {
        let t = Timeline::build(spec(ThreadingDesign::SyncOs));
        let art = t.render_ascii(60);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("host"));
        assert!(lines[1].starts_with("interface"));
        assert!(lines[2].starts_with("accelerator"));
        assert!(lines[3].starts_with("legend"));
        assert!(art.contains('A'));
        assert!(art.contains('x'));
    }

    #[test]
    fn zero_duration_segments_are_elided() {
        let mut s = spec(ThreadingDesign::Sync);
        s.overheads = OffloadOverheads::NONE;
        let t = Timeline::build(s);
        assert!(t.segments().iter().all(|seg| seg.duration().get() > 0.0));
        assert!(t.lane(Lane::Interface).next().is_none());
    }
}
