//! Kernel computational complexity in the offload granularity (`g^β`).
//!
//! Eqn (2) of the paper notes that the per-offload profitability test can
//! be extended to model the kernel's complexity using `g^β`: `β = 1` for a
//! linear kernel (e.g. encryption), `β < 1` for sub-linear kernels, and
//! `β > 1` for super-linear kernels (e.g. some compression settings). The
//! paper's own validation assumes linear kernels because scaling studies
//! on production systems are impractical; the default here is therefore
//! [`Complexity::LINEAR`].

use serde::{Deserialize, Serialize};

use crate::error::{ensure, Result};
use crate::units::{Bytes, Cycles, CyclesPerByte};

/// A kernel's computational complexity exponent `β` in `Cb · g^β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Complexity(f64);

impl Complexity {
    /// Linear complexity (`β = 1`): cost proportional to offload size.
    pub const LINEAR: Complexity = Complexity(1.0);

    /// Creates a complexity with exponent `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] unless
    /// `beta` is finite and positive.
    pub fn new(beta: f64) -> Result<Self> {
        ensure(
            beta.is_finite() && beta > 0.0,
            "beta",
            beta,
            "complexity exponent must be finite and positive",
        )?;
        Ok(Self(beta))
    }

    /// The exponent `β`.
    #[must_use]
    pub fn beta(self) -> f64 {
        self.0
    }

    /// `true` when `β < 1`.
    #[must_use]
    pub fn is_sub_linear(self) -> bool {
        self.0 < 1.0
    }

    /// `true` when `β > 1`.
    #[must_use]
    pub fn is_super_linear(self) -> bool {
        self.0 > 1.0
    }

    /// Evaluates `g^β`.
    #[must_use]
    pub fn scale(self, g: Bytes) -> f64 {
        g.get().powf(self.0)
    }

    /// Inverts `g^β = x`, returning `g = x^(1/β)`.
    #[must_use]
    pub fn invert(self, x: f64) -> Bytes {
        Bytes::new(x.powf(1.0 / self.0))
    }
}

impl Default for Complexity {
    fn default() -> Self {
        Complexity::LINEAR
    }
}

/// The host-side cost model for one kernel: `Cb` cycles per byte with
/// complexity `g^β`.
///
/// This is the quantity the paper derives from micro-benchmarks when
/// applying the per-offload profitability tests (eqns 2, 4, 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// `Cb`: host cycles per byte at linear scale.
    pub cycles_per_byte: CyclesPerByte,
    /// The complexity exponent `β`.
    pub complexity: Complexity,
}

impl KernelCost {
    /// A linear-complexity kernel cost.
    #[must_use]
    pub fn linear(cycles_per_byte: CyclesPerByte) -> Self {
        Self {
            cycles_per_byte,
            complexity: Complexity::LINEAR,
        }
    }

    /// Host cycles to execute a `g`-byte invocation: `Cb · g^β`.
    #[must_use]
    pub fn host_cycles(&self, g: Bytes) -> Cycles {
        Cycles::new(self.cycles_per_byte.get() * self.complexity.scale(g))
    }

    /// Accelerator cycles for a `g`-byte invocation: `Cb · g^β / A`.
    ///
    /// The paper assumes host and accelerator run kernels of the same
    /// complexity, the accelerator simply being `A×` faster.
    #[must_use]
    pub fn accelerator_cycles(&self, g: Bytes, peak_speedup: f64) -> Cycles {
        self.host_cycles(g) / peak_speedup
    }

    /// Inverts the cost model: the granularity whose host cost equals
    /// `target` cycles.
    #[must_use]
    pub fn granularity_for_cycles(&self, target: Cycles) -> Bytes {
        self.complexity.invert(target.get() / self.cycles_per_byte.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{bytes, cycles, cycles_per_byte};

    #[test]
    fn linear_is_default() {
        assert_eq!(Complexity::default(), Complexity::LINEAR);
        assert_eq!(Complexity::LINEAR.beta(), 1.0);
        assert!(!Complexity::LINEAR.is_sub_linear());
        assert!(!Complexity::LINEAR.is_super_linear());
    }

    #[test]
    fn rejects_invalid_exponents() {
        assert!(Complexity::new(0.0).is_err());
        assert!(Complexity::new(-1.0).is_err());
        assert!(Complexity::new(f64::NAN).is_err());
        assert!(Complexity::new(0.5).unwrap().is_sub_linear());
        assert!(Complexity::new(2.0).unwrap().is_super_linear());
    }

    #[test]
    fn scale_and_invert_round_trip() {
        let c = Complexity::new(1.5).unwrap();
        let g = bytes(256.0);
        let scaled = c.scale(g);
        let back = c.invert(scaled);
        assert!((back.get() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn linear_cost_is_cb_times_g() {
        let cost = KernelCost::linear(cycles_per_byte(5.62));
        assert!((cost.host_cycles(bytes(425.0)).get() - 5.62 * 425.0).abs() < 1e-9);
    }

    #[test]
    fn accelerator_cuts_cost_by_a() {
        let cost = KernelCost::linear(cycles_per_byte(2.0));
        let host = cost.host_cycles(bytes(100.0));
        let accel = cost.accelerator_cycles(bytes(100.0), 4.0);
        assert!((host.get() / accel.get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn super_linear_kernel_grows_faster() {
        let lin = KernelCost::linear(cycles_per_byte(1.0));
        let sup = KernelCost {
            cycles_per_byte: cycles_per_byte(1.0),
            complexity: Complexity::new(1.3).unwrap(),
        };
        assert!(sup.host_cycles(bytes(1024.0)) > lin.host_cycles(bytes(1024.0)));
        // And slower below 1 byte-scale.
        assert!(sup.host_cycles(bytes(0.5)) < lin.host_cycles(bytes(0.5)));
    }

    #[test]
    fn granularity_for_cycles_inverts_host_cycles() {
        let cost = KernelCost {
            cycles_per_byte: cycles_per_byte(3.0),
            complexity: Complexity::new(1.2).unwrap(),
        };
        let g = bytes(777.0);
        let c = cost.host_cycles(g);
        assert!((cost.granularity_for_cycles(c).get() - 777.0).abs() < 1e-6);
        let _ = cycles(0.0);
    }
}
