//! Model parameters (Table 5 of the paper).

use serde::{Deserialize, Serialize};

use crate::error::{ensure, Result};
use crate::units::Cycles;

/// Per-offload overhead cycles dispatched alongside each offload
/// (the `o0`, `L`, `Q`, and `o1` columns of Table 5).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadOverheads {
    /// `o0`: cycles the host spends setting up the kernel prior to a
    /// single offload (e.g. preparing descriptors, batching, extra I/O).
    pub setup: Cycles,
    /// `L`: average cycles to move one offload from host to accelerator
    /// across the interface, including cache/memory transit time.
    pub interface: Cycles,
    /// `Q`: average cycles an offload waits for the accelerator to become
    /// available.
    pub queueing: Cycles,
    /// `o1`: cycles for one thread switch (context switch plus consequent
    /// cache pollution), paid when the OS switches threads around a
    /// blocked offload.
    pub thread_switch: Cycles,
}

impl OffloadOverheads {
    /// No overheads at all — the idealized on-chip case.
    pub const NONE: Self = Self {
        setup: Cycles::ZERO,
        interface: Cycles::ZERO,
        queueing: Cycles::ZERO,
        thread_switch: Cycles::ZERO,
    };

    /// Creates overheads from raw cycle values in Table 5 order
    /// (`o0`, `L`, `Q`, `o1`).
    #[must_use]
    pub fn new(o0: f64, l: f64, q: f64, o1: f64) -> Self {
        Self {
            setup: Cycles::new(o0),
            interface: Cycles::new(l),
            queueing: Cycles::new(q),
            thread_switch: Cycles::new(o1),
        }
    }

    /// The dispatch overhead `o0 + L + Q` that every offload pays
    /// regardless of threading design.
    #[must_use]
    pub fn dispatch(self) -> Cycles {
        self.setup + self.interface + self.queueing
    }

    fn validate(&self) -> Result<()> {
        ensure(
            self.setup.is_valid_magnitude(),
            "o0",
            self.setup.get(),
            "setup cycles must be finite and non-negative",
        )?;
        ensure(
            self.interface.is_valid_magnitude(),
            "L",
            self.interface.get(),
            "interface cycles must be finite and non-negative",
        )?;
        ensure(
            self.queueing.is_valid_magnitude(),
            "Q",
            self.queueing.get(),
            "queueing cycles must be finite and non-negative",
        )?;
        ensure(
            self.thread_switch.is_valid_magnitude(),
            "o1",
            self.thread_switch.get(),
            "thread-switch cycles must be finite and non-negative",
        )
    }
}

/// The complete parameter set of the Accelerometer model for one kernel
/// under study (Table 5).
///
/// The paper's `C` is the total host cycles spent executing *all* logic in
/// a fixed time unit (one second at the host's busy frequency); `α ≤ 1` is
/// the fraction of those cycles spent in the kernel being accelerated; `n`
/// is the number of lucrative offloads in the window; and `A` is the peak
/// accelerator speedup factor.
///
/// # Examples
///
/// The AES-NI case study (Table 6, row 1):
///
/// ```
/// use accelerometer::ModelParams;
///
/// let params = ModelParams::builder()
///     .host_cycles(2.0e9)
///     .kernel_fraction(0.165844)
///     .offloads(298_951.0)
///     .setup_cycles(10.0)
///     .interface_cycles(3.0)
///     .peak_speedup(6.0)
///     .build()?;
/// assert_eq!(params.offloads(), 298_951.0);
/// # Ok::<(), accelerometer::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    host_cycles: Cycles,
    kernel_fraction: f64,
    offloads: f64,
    overheads: OffloadOverheads,
    peak_speedup: f64,
}

impl ModelParams {
    /// Starts building a parameter set.
    #[must_use]
    pub fn builder() -> ModelParamsBuilder {
        ModelParamsBuilder::default()
    }

    /// `C`: total host cycles in the accounting window.
    #[must_use]
    pub fn host_cycles(&self) -> Cycles {
        self.host_cycles
    }

    /// `α`: fraction of host cycles spent executing the kernel.
    #[must_use]
    pub fn kernel_fraction(&self) -> f64 {
        self.kernel_fraction
    }

    /// `n`: number of lucrative offloads in the accounting window.
    #[must_use]
    pub fn offloads(&self) -> f64 {
        self.offloads
    }

    /// The per-offload overhead cycles (`o0`, `L`, `Q`, `o1`).
    #[must_use]
    pub fn overheads(&self) -> OffloadOverheads {
        self.overheads
    }

    /// `A`: the accelerator's peak speedup factor for this kernel.
    #[must_use]
    pub fn peak_speedup(&self) -> f64 {
        self.peak_speedup
    }

    /// `α·C`: host cycles spent in the kernel when unaccelerated.
    #[must_use]
    pub fn kernel_cycles(&self) -> Cycles {
        self.host_cycles * self.kernel_fraction
    }

    /// `α·C/A`: cycles the accelerator spends executing the kernel.
    #[must_use]
    pub fn accelerator_cycles(&self) -> Cycles {
        self.kernel_cycles() / self.peak_speedup
    }

    /// `(1-α)·C`: host cycles spent in non-kernel logic.
    #[must_use]
    pub fn non_kernel_cycles(&self) -> Cycles {
        self.host_cycles * (1.0 - self.kernel_fraction)
    }

    /// Returns a copy with the kernel fraction replaced (used when scaling
    /// `α` down to only the lucrative offloads).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] if `alpha` is not in
    /// `(0, 1]`.
    pub fn with_kernel_fraction(mut self, alpha: f64) -> Result<Self> {
        ensure(
            alpha > 0.0 && alpha <= 1.0 && alpha.is_finite(),
            "alpha",
            alpha,
            "must satisfy 0 < alpha <= 1",
        )?;
        self.kernel_fraction = alpha;
        Ok(self)
    }

    /// Returns a copy with the offload count replaced (used when selecting
    /// only lucrative offloads).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] if `n` is negative
    /// or non-finite.
    pub fn with_offloads(mut self, n: f64) -> Result<Self> {
        ensure(
            n >= 0.0 && n.is_finite(),
            "n",
            n,
            "offload count must be finite and non-negative",
        )?;
        self.offloads = n;
        Ok(self)
    }
}

/// Builder for [`ModelParams`]; all cycle quantities are raw `f64` cycles.
#[derive(Debug, Clone, Default)]
pub struct ModelParamsBuilder {
    host_cycles: Option<f64>,
    kernel_fraction: Option<f64>,
    offloads: Option<f64>,
    overheads: OffloadOverheads,
    peak_speedup: Option<f64>,
}

impl ModelParamsBuilder {
    /// Sets `C`, the host cycles in the accounting window.
    #[must_use]
    pub fn host_cycles(mut self, c: f64) -> Self {
        self.host_cycles = Some(c);
        self
    }

    /// Sets `α`, the kernel's fraction of host cycles.
    #[must_use]
    pub fn kernel_fraction(mut self, alpha: f64) -> Self {
        self.kernel_fraction = Some(alpha);
        self
    }

    /// Sets `n`, the number of offloads in the window.
    #[must_use]
    pub fn offloads(mut self, n: f64) -> Self {
        self.offloads = Some(n);
        self
    }

    /// Sets `o0`, the per-offload setup cycles.
    #[must_use]
    pub fn setup_cycles(mut self, o0: f64) -> Self {
        self.overheads.setup = Cycles::new(o0);
        self
    }

    /// Sets `L`, the per-offload interface transfer cycles.
    #[must_use]
    pub fn interface_cycles(mut self, l: f64) -> Self {
        self.overheads.interface = Cycles::new(l);
        self
    }

    /// Sets `Q`, the mean per-offload queueing cycles.
    #[must_use]
    pub fn queueing_cycles(mut self, q: f64) -> Self {
        self.overheads.queueing = Cycles::new(q);
        self
    }

    /// Sets `o1`, the thread-switch cycles.
    #[must_use]
    pub fn thread_switch_cycles(mut self, o1: f64) -> Self {
        self.overheads.thread_switch = Cycles::new(o1);
        self
    }

    /// Sets every overhead at once.
    #[must_use]
    pub fn overheads(mut self, overheads: OffloadOverheads) -> Self {
        self.overheads = overheads;
        self
    }

    /// Sets `A`, the accelerator's peak speedup factor.
    #[must_use]
    pub fn peak_speedup(mut self, a: f64) -> Self {
        self.peak_speedup = Some(a);
        self
    }

    /// Validates and builds the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] when a required
    /// parameter is missing or outside its domain: `C > 0`,
    /// `0 < α ≤ 1`, `n ≥ 0`, `A ≥ 1`, and all overheads finite and
    /// non-negative.
    pub fn build(self) -> Result<ModelParams> {
        let host_cycles = self.host_cycles.unwrap_or(f64::NAN);
        ensure(
            host_cycles.is_finite() && host_cycles > 0.0,
            "C",
            host_cycles,
            "host cycles must be set, finite, and positive",
        )?;
        let alpha = self.kernel_fraction.unwrap_or(f64::NAN);
        ensure(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha",
            alpha,
            "must be set and satisfy 0 < alpha <= 1",
        )?;
        let offloads = self.offloads.unwrap_or(f64::NAN);
        ensure(
            offloads.is_finite() && offloads >= 0.0,
            "n",
            offloads,
            "offload count must be set, finite, and non-negative",
        )?;
        // A = 1 is meaningful: case study 3 offloads inference to a
        // general-purpose remote CPU with no kernel-level speedup.
        let peak_speedup = self.peak_speedup.unwrap_or(f64::NAN);
        ensure(
            peak_speedup >= 1.0 || peak_speedup == f64::INFINITY,
            "A",
            peak_speedup,
            "peak speedup must be set and at least 1 (may be infinite)",
        )?;
        self.overheads.validate()?;
        Ok(ModelParams {
            host_cycles: Cycles::new(host_cycles),
            kernel_fraction: alpha,
            offloads,
            overheads: self.overheads,
            peak_speedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ModelError;

    fn aes_ni() -> ModelParams {
        ModelParams::builder()
            .host_cycles(2.0e9)
            .kernel_fraction(0.165844)
            .offloads(298_951.0)
            .setup_cycles(10.0)
            .interface_cycles(3.0)
            .peak_speedup(6.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_round_trips_table_6_row() {
        let p = aes_ni();
        assert_eq!(p.host_cycles().get(), 2.0e9);
        assert_eq!(p.kernel_fraction(), 0.165844);
        assert_eq!(p.offloads(), 298_951.0);
        assert_eq!(p.overheads().setup.get(), 10.0);
        assert_eq!(p.overheads().interface.get(), 3.0);
        assert_eq!(p.overheads().queueing.get(), 0.0);
        assert_eq!(p.peak_speedup(), 6.0);
    }

    #[test]
    fn derived_cycle_quantities() {
        let p = aes_ni();
        let kernel = p.kernel_cycles().get();
        assert!((kernel - 0.165844 * 2.0e9).abs() < 1.0);
        assert!((p.accelerator_cycles().get() - kernel / 6.0).abs() < 1.0);
        assert!((p.non_kernel_cycles().get() + kernel - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn dispatch_overhead_sums_o0_l_q() {
        let ovh = OffloadOverheads::new(10.0, 3.0, 7.0, 100.0);
        assert_eq!(ovh.dispatch().get(), 20.0);
    }

    #[test]
    fn rejects_missing_c() {
        let err = ModelParams::builder()
            .kernel_fraction(0.5)
            .offloads(1.0)
            .peak_speedup(2.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { name: "C", .. }));
    }

    #[test]
    fn rejects_alpha_out_of_range() {
        for bad in [0.0, -0.1, 1.1, f64::NAN] {
            let err = ModelParams::builder()
                .host_cycles(1e9)
                .kernel_fraction(bad)
                .offloads(1.0)
                .peak_speedup(2.0)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidParameter { name: "alpha", .. }),
                "alpha = {bad} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_speedup_below_one() {
        let err = ModelParams::builder()
            .host_cycles(1e9)
            .kernel_fraction(0.5)
            .offloads(1.0)
            .peak_speedup(0.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { name: "A", .. }));
    }

    #[test]
    fn accepts_unit_and_infinite_speedup() {
        // Case study 3 uses A = 1 (general-purpose remote CPU).
        for a in [1.0, f64::INFINITY] {
            let p = ModelParams::builder()
                .host_cycles(1e9)
                .kernel_fraction(0.5)
                .offloads(1.0)
                .peak_speedup(a)
                .build()
                .unwrap();
            assert_eq!(p.peak_speedup(), a);
        }
    }

    #[test]
    fn rejects_negative_overheads() {
        let err = ModelParams::builder()
            .host_cycles(1e9)
            .kernel_fraction(0.5)
            .offloads(1.0)
            .peak_speedup(2.0)
            .queueing_cycles(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { name: "Q", .. }));
    }

    #[test]
    fn with_kernel_fraction_validates() {
        let p = aes_ni();
        assert!(p.with_kernel_fraction(0.1).is_ok());
        assert!(p.with_kernel_fraction(0.0).is_err());
        assert!(p.with_kernel_fraction(2.0).is_err());
    }

    #[test]
    fn with_offloads_validates() {
        let p = aes_ni();
        assert_eq!(p.with_offloads(5.0).unwrap().offloads(), 5.0);
        assert!(p.with_offloads(-1.0).is_err());
        assert!(p.with_offloads(f64::NAN).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = aes_ni();
        let json = serde_json::to_string(&p).unwrap();
        let back: ModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
