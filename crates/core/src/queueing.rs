//! Accelerator queueing estimators for the model's `Q` parameter.
//!
//! Table 5 defines `Q` as the average cycles an offload waits for the
//! accelerator to become available. The paper's eqn (1) discussion notes
//! that `Q` "enables projecting speedup based on accelerator load": a
//! shared accelerator serving many host cores queues like any other
//! server. This module provides the standard estimators a capacity
//! planner would plug in — M/M/1, M/D/1, and an empirical-sample form —
//! so projections can be driven by offered load instead of a guessed
//! constant.

use serde::{Deserialize, Serialize};

use crate::error::{ensure, Result};
use crate::units::Cycles;

/// A single-server queueing estimate of the accelerator's mean wait.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueEstimate {
    /// Offered utilization `ρ = λ·s` (arrival rate × mean service time).
    pub utilization: f64,
    /// Mean wait in queue (the model's `Q`), in cycles.
    pub mean_wait: Cycles,
    /// Mean number of offloads waiting (Little's law: `λ·W`).
    pub mean_queue_length: f64,
}

/// M/M/1 mean queueing delay: `W = ρ/(1−ρ) · s` for service time `s`.
///
/// `arrival_rate` is offloads per cycle (e.g. `n / C`); `service` is the
/// accelerator's mean per-offload service time in cycles.
///
/// # Errors
///
/// Returns [`crate::ModelError::InvalidParameter`] if the utilization
/// `ρ = λ·s` is not strictly less than 1 (the queue is unstable) or any
/// input is negative/non-finite.
pub fn mm1_wait(arrival_rate: f64, service: Cycles) -> Result<QueueEstimate> {
    validate_inputs(arrival_rate, service)?;
    let rho = arrival_rate * service.get();
    ensure(rho < 1.0, "rho", rho, "utilization must be < 1 for a stable queue")?;
    let wait = rho / (1.0 - rho) * service.get();
    Ok(QueueEstimate {
        utilization: rho,
        mean_wait: Cycles::new(wait),
        mean_queue_length: arrival_rate * wait,
    })
}

/// M/D/1 mean queueing delay (deterministic service):
/// `W = ρ/(2(1−ρ)) · s` — half the M/M/1 wait.
///
/// Fixed-function accelerators with near-constant per-byte service time
/// (e.g. an encryption ASIC at a fixed granularity) queue closer to M/D/1
/// than M/M/1.
///
/// # Errors
///
/// Same stability conditions as [`mm1_wait`].
pub fn md1_wait(arrival_rate: f64, service: Cycles) -> Result<QueueEstimate> {
    validate_inputs(arrival_rate, service)?;
    let rho = arrival_rate * service.get();
    ensure(rho < 1.0, "rho", rho, "utilization must be < 1 for a stable queue")?;
    let wait = rho / (2.0 * (1.0 - rho)) * service.get();
    Ok(QueueEstimate {
        utilization: rho,
        mean_wait: Cycles::new(wait),
        mean_queue_length: arrival_rate * wait,
    })
}

/// Summarizes an empirical queue-delay distribution into the mean `Q` and
/// tail statistics. This is the `Σᵢ Qᵢ` form of eqn (1): the model's
/// `n·Q` term is replaced by the distribution's actual sum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueDistributionSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean wait (the model's `Q`).
    pub mean: Cycles,
    /// Median wait.
    pub p50: Cycles,
    /// 99th-percentile wait — what an SLO guardian watches.
    pub p99: Cycles,
    /// Maximum observed wait.
    pub max: Cycles,
    /// Total wait across all samples (`Σᵢ Qᵢ`).
    pub total: Cycles,
}

/// Summarizes raw queueing samples.
///
/// Returns `None` for an empty sample set.
#[must_use]
pub fn summarize_samples(samples: &[Cycles]) -> Option<QueueDistributionSummary> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.iter().map(|c| c.get()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("queue delays must not be NaN"));
    let total: f64 = sorted.iter().sum();
    let pick = |p: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    Some(QueueDistributionSummary {
        count: sorted.len(),
        mean: Cycles::new(total / sorted.len() as f64),
        p50: Cycles::new(pick(0.50)),
        p99: Cycles::new(pick(0.99)),
        max: Cycles::new(*sorted.last().expect("non-empty")),
        total: Cycles::new(total),
    })
}

/// The analytical face of the fault model: the expected load a fault
/// plan with a retry/fallback recovery discipline adds to the system.
///
/// Transient offload failures with probability `p` and up to `r`
/// retries form a geometric saga: the expected number of device
/// attempts per offload is `E[a] = (1 − p^(r+1)) / (1 − p)` (each
/// attempt hits the accelerator, inflating the arrival rate the `Q`
/// estimators see), and the saga exhausts all attempts with probability
/// `p_exh = p^(r+1)`. When the policy falls back to the host, every
/// exhausted saga re-executes the kernel on a core — real host demand
/// of `p_fb · α` per unit of work, exactly what the simulator now
/// schedules as fallback slices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultLoad {
    /// Per-attempt transient failure probability `p`.
    pub failure_probability: f64,
    /// Retry budget `r` (attempts = `r + 1`).
    pub max_retries: u32,
    /// Whether exhausted sagas re-execute on the host.
    pub fallback_to_host: bool,
    /// Expected device attempts per offload, `(1 − p^(r+1)) / (1 − p)`.
    pub expected_attempts: f64,
    /// Probability a saga exhausts every attempt, `p^(r+1)`.
    pub exhaustion_probability: f64,
}

impl FaultLoad {
    /// Probability an offload's work lands back on the host: the
    /// exhaustion probability when fallback is enabled, zero otherwise
    /// (an abandoned offload costs goodput, not host cycles).
    #[must_use]
    pub fn host_fallback_probability(&self) -> f64 {
        if self.fallback_to_host {
            self.exhaustion_probability
        } else {
            0.0
        }
    }

    /// The device arrival rate after retry inflation: `λ · E[a]`.
    #[must_use]
    pub fn inflated_arrival_rate(&self, arrival_rate: f64) -> f64 {
        arrival_rate * self.expected_attempts
    }
}

/// Builds the [`FaultLoad`] for a failure probability `p` and a
/// retry/fallback policy.
///
/// # Errors
///
/// Returns [`crate::ModelError::InvalidParameter`] if `p` is outside
/// `[0, 1]` or non-finite.
pub fn fault_load(failure_probability: f64, max_retries: u32, fallback_to_host: bool) -> Result<FaultLoad> {
    ensure(
        failure_probability.is_finite() && (0.0..=1.0).contains(&failure_probability),
        "failure_probability",
        failure_probability,
        "failure probability must lie in [0, 1]",
    )?;
    let p = failure_probability;
    let attempts = f64::from(max_retries) + 1.0;
    let exhaustion = p.powf(attempts);
    // Geometric series; the p → 1 limit is `attempts` (every attempt
    // runs and fails).
    let expected_attempts = if (1.0 - p).abs() < f64::EPSILON {
        attempts
    } else {
        (1.0 - exhaustion) / (1.0 - p)
    };
    Ok(FaultLoad {
        failure_probability: p,
        max_retries,
        fallback_to_host,
        expected_attempts,
        exhaustion_probability: exhaustion,
    })
}

fn validate_inputs(arrival_rate: f64, service: Cycles) -> Result<()> {
    ensure(
        arrival_rate.is_finite() && arrival_rate >= 0.0,
        "lambda",
        arrival_rate,
        "arrival rate must be finite and non-negative",
    )?;
    ensure(
        service.is_valid_magnitude(),
        "service",
        service.get(),
        "service time must be finite and non-negative",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::cycles;

    #[test]
    fn mm1_at_half_load_waits_one_service_time() {
        // ρ = 0.5 → W = 0.5/0.5 · s = s.
        let est = mm1_wait(0.5e-3, cycles(1_000.0)).unwrap();
        assert!((est.utilization - 0.5).abs() < 1e-12);
        assert!((est.mean_wait.get() - 1_000.0).abs() < 1e-9);
        // Little's law: L = λW = 0.5.
        assert!((est.mean_queue_length - 0.5).abs() < 1e-12);
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        let mm1 = mm1_wait(0.5e-3, cycles(1_000.0)).unwrap();
        let md1 = md1_wait(0.5e-3, cycles(1_000.0)).unwrap();
        assert!((md1.mean_wait.get() - mm1.mean_wait.get() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_queue_is_rejected() {
        assert!(mm1_wait(1.0e-3, cycles(1_000.0)).is_err());
        assert!(mm1_wait(2.0e-3, cycles(1_000.0)).is_err());
        assert!(md1_wait(1.0e-3, cycles(1_000.0)).is_err());
    }

    #[test]
    fn zero_load_means_zero_wait() {
        let est = mm1_wait(0.0, cycles(1_000.0)).unwrap();
        assert_eq!(est.mean_wait.get(), 0.0);
        assert_eq!(est.mean_queue_length, 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(mm1_wait(-1.0, cycles(10.0)).is_err());
        assert!(mm1_wait(f64::NAN, cycles(10.0)).is_err());
        assert!(mm1_wait(0.1, cycles(-10.0)).is_err());
    }

    #[test]
    fn wait_explodes_near_saturation() {
        let low = mm1_wait(0.5e-3, cycles(1_000.0)).unwrap();
        let high = mm1_wait(0.99e-3, cycles(1_000.0)).unwrap();
        assert!(high.mean_wait.get() > 50.0 * low.mean_wait.get());
    }

    #[test]
    fn fault_load_geometric_attempts() {
        // p = 0.5, r = 1: attempts = (1 − 0.25) / 0.5 = 1.5, exhaustion
        // 0.25.
        let load = fault_load(0.5, 1, true).unwrap();
        assert!((load.expected_attempts - 1.5).abs() < 1e-12);
        assert!((load.exhaustion_probability - 0.25).abs() < 1e-12);
        assert!((load.host_fallback_probability() - 0.25).abs() < 1e-12);
        assert!((load.inflated_arrival_rate(2.0e-4) - 3.0e-4).abs() < 1e-16);
        // Without fallback the exhausted work never reaches the host.
        let abandon = fault_load(0.5, 1, false).unwrap();
        assert_eq!(abandon.host_fallback_probability(), 0.0);
    }

    #[test]
    fn fault_load_degenerate_probabilities() {
        // Healthy: one attempt, nothing exhausted, no host demand.
        let healthy = fault_load(0.0, 3, true).unwrap();
        assert_eq!(healthy.expected_attempts, 1.0);
        assert_eq!(healthy.exhaustion_probability, 0.0);
        assert_eq!(healthy.host_fallback_probability(), 0.0);
        // Certain failure: every attempt runs and fails; everything
        // falls back.
        let doomed = fault_load(1.0, 2, true).unwrap();
        assert_eq!(doomed.expected_attempts, 3.0);
        assert_eq!(doomed.exhaustion_probability, 1.0);
        assert_eq!(doomed.host_fallback_probability(), 1.0);
        // Out-of-range probabilities are rejected.
        assert!(fault_load(-0.1, 0, false).is_err());
        assert!(fault_load(1.5, 0, false).is_err());
        assert!(fault_load(f64::NAN, 0, false).is_err());
    }

    #[test]
    fn sample_summary_statistics() {
        let samples: Vec<Cycles> = (1..=100).map(|i| cycles(f64::from(i))).collect();
        let s = summarize_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean.get() - 50.5).abs() < 1e-9);
        assert_eq!(s.max.get(), 100.0);
        assert_eq!(s.total.get(), 5_050.0);
        assert!(s.p50.get() >= 50.0 && s.p50.get() <= 51.0);
        assert!(s.p99.get() >= 99.0);
        assert!(summarize_samples(&[]).is_none());
    }
}
