//! Deterministic fan-out of independent jobs over scoped worker threads.
//!
//! Every batch experiment in the workspace — model batches, simulator
//! load sweeps, A/B case studies, ablations, figure regeneration — is a
//! set of *independent* jobs whose results must land in input order and
//! be byte-identical whether they ran on one thread or many. This module
//! is the single primitive they all share: a scoped pool that hands jobs
//! to workers through an atomic cursor and reassembles results by index,
//! so scheduling order can never leak into output order.
//!
//! Determinism contract: a job may depend only on its input and index
//! (simulation jobs carry their own RNG seed in their config), so
//! `ExecPool::new(1)` and `ExecPool::new(n)` produce identical results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide default worker count; `0` means "ask the OS".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// The machine's available parallelism (at least 1).
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sets the process-wide default worker count used by
/// [`ExecPool::default`]. `0` restores the "available parallelism"
/// behaviour. Binaries wire their `--jobs N` flag to this.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The current default worker count: the value set via
/// [`set_default_jobs`], or [`available_jobs`] when unset.
#[must_use]
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available_jobs(),
        n => n,
    }
}

/// A fixed-width pool for running independent jobs on scoped threads.
///
/// Results always preserve input order. With one worker (or one job) the
/// pool degenerates to a plain sequential loop with no thread spawns.
#[derive(Debug, Clone, Copy)]
pub struct ExecPool {
    jobs: usize,
}

impl Default for ExecPool {
    /// A pool with the process-wide default worker count (see
    /// [`set_default_jobs`]).
    fn default() -> Self {
        Self::new(default_jobs())
    }
}

impl ExecPool {
    /// A pool with exactly `jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The pool's worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, preserving input order in the output.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// [`map`](Self::map) with per-worker scratch state: each worker
    /// materializes its state with `init` once and threads it through
    /// every job it pulls. Results still land in input order.
    ///
    /// This is the allocation-reuse hook for job bodies that would
    /// otherwise rebuild an expensive structure per job — the sweep
    /// runners pass a reusable simulation engine as the state. The
    /// determinism contract sharpens accordingly: `f` must produce a
    /// result that depends only on the input and index, treating the
    /// state strictly as a cache (the engine's `reset` guarantees
    /// exactly that).
    pub fn map_init<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, i, item))
                .collect();
        }
        let count = items.len();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                scope.spawn(move |_| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        // The receiver outlives every sender in scope.
                        let _ = tx.send((i, f(&mut state, i, &items[i])));
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
            for (i, result) in rx {
                slots[i] = Some(result);
            }
            slots
                .into_iter()
                .map(|r| r.expect("every job reports exactly once"))
                .collect()
        })
        .expect("pool workers do not panic")
    }

    /// Applies `f` to every item in place, fanning contiguous chunks
    /// out to workers. Each item is visited exactly once with its
    /// index; because items are disjoint `&mut` borrows and `f` returns
    /// nothing through the pool, the post-state is identical at any
    /// worker count as long as `f(i, item)` depends only on `i` and
    /// `item` — the contract the sharded simulator's epoch barrier
    /// relies on.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let count = items.len();
        if count == 0 {
            return;
        }
        let workers = self.jobs.min(count);
        if workers <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = count.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            for (c, chunk_items) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move |_| {
                    for (j, item) in chunk_items.iter_mut().enumerate() {
                        f(c * chunk + j, item);
                    }
                });
            }
        })
        .expect("pool workers do not panic");
    }

    /// Runs `f(0), f(1), …, f(count - 1)` and returns the results in
    /// index order. Workers pull indices from a shared cursor, so
    /// heterogeneous job costs balance dynamically.
    pub fn run<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move |_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // The receiver outlives every sender inside the scope.
                    let _ = tx.send((i, f(i)));
                });
            }
            drop(tx);
            let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
            for (i, result) in rx {
                slots[i] = Some(result);
            }
            slots
                .into_iter()
                .map(|r| r.expect("every job reports exactly once"))
                .collect()
        })
        .expect("pool workers do not panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for jobs in [1, 2, 8, 128] {
            let got = ExecPool::new(jobs).map(&items, |_, &x| x * x);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = ExecPool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(ExecPool::new(0).jobs(), 1);
    }

    #[test]
    fn run_passes_each_index_once() {
        let got = ExecPool::new(3).run(17, |i| i);
        assert_eq!(got, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_and_preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x + 1).collect();
        for jobs in [1, 3, 16] {
            // The state is a scratch Vec a worker refills per job; the
            // result must not depend on what earlier jobs left in it.
            let got = ExecPool::new(jobs).map_init(
                &items,
                Vec::<usize>::new,
                |scratch, _, &x| {
                    scratch.clear();
                    scratch.push(x);
                    scratch[0] + 1
                },
            );
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn for_each_mut_visits_every_item_once_at_any_width() {
        for jobs in [1, 2, 5, 64] {
            let mut items: Vec<usize> = (0..23).collect();
            ExecPool::new(jobs).for_each_mut(&mut items, |i, item| {
                assert_eq!(*item, i, "index mismatch at jobs = {jobs}");
                *item += 100;
            });
            let expected: Vec<usize> = (100..123).collect();
            assert_eq!(items, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn default_jobs_round_trips() {
        // Serially within one test to avoid cross-test races on the
        // global: set, read, restore.
        set_default_jobs(5);
        assert_eq!(default_jobs(), 5);
        assert_eq!(ExecPool::default().jobs(), 5);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
