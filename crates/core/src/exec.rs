//! Deterministic fan-out of independent jobs over scoped worker threads.
//!
//! Every batch experiment in the workspace — model batches, simulator
//! load sweeps, A/B case studies, ablations, figure regeneration — is a
//! set of *independent* jobs whose results must land in input order and
//! be byte-identical whether they ran on one thread or many. This module
//! is the single primitive they all share: a scoped pool that hands jobs
//! to workers through an atomic cursor and reassembles results by index,
//! so scheduling order can never leak into output order.
//!
//! Determinism contract: a job may depend only on its input and index
//! (simulation jobs carry their own RNG seed in their config), so
//! `ExecPool::new(1)` and `ExecPool::new(n)` produce identical results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide default worker count; `0` means "ask the OS".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// The machine's available parallelism (at least 1).
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sets the process-wide default worker count used by
/// [`ExecPool::default`]. `0` restores the "available parallelism"
/// behaviour. Binaries wire their `--jobs N` flag to this.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The current default worker count: the value set via
/// [`set_default_jobs`], or [`available_jobs`] when unset.
#[must_use]
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available_jobs(),
        n => n,
    }
}

/// A fixed-width pool for running independent jobs on scoped threads.
///
/// Results always preserve input order. With one worker (or one job) the
/// pool degenerates to a plain sequential loop with no thread spawns.
#[derive(Debug, Clone, Copy)]
pub struct ExecPool {
    jobs: usize,
}

impl Default for ExecPool {
    /// A pool with the process-wide default worker count (see
    /// [`set_default_jobs`]).
    fn default() -> Self {
        Self::new(default_jobs())
    }
}

impl ExecPool {
    /// A pool with exactly `jobs` workers (clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The pool's worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, preserving input order in the output.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Runs `f(0), f(1), …, f(count - 1)` and returns the results in
    /// index order. Workers pull indices from a shared cursor, so
    /// heterogeneous job costs balance dynamically.
    pub fn run<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move |_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    // The receiver outlives every sender inside the scope.
                    let _ = tx.send((i, f(i)));
                });
            }
            drop(tx);
            let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
            for (i, result) in rx {
                slots[i] = Some(result);
            }
            slots
                .into_iter()
                .map(|r| r.expect("every job reports exactly once"))
                .collect()
        })
        .expect("pool workers do not panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for jobs in [1, 2, 8, 128] {
            let got = ExecPool::new(jobs).map(&items, |_, &x| x * x);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = ExecPool::new(4);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(ExecPool::new(0).jobs(), 1);
    }

    #[test]
    fn run_passes_each_index_once() {
        let got = ExecPool::new(3).run(17, |i| i);
        assert_eq!(got, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn default_jobs_round_trips() {
        // Serially within one test to avoid cross-test races on the
        // global: set, read, restore.
        set_default_jobs(5);
        assert_eq!(default_jobs(), 5);
        assert_eq!(ExecPool::default().jobs(), 5);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
