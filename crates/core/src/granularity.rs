//! Offload-granularity distributions (the CDFs of Figs. 15, 19, 21, 22).
//!
//! The paper's validation methodology (§4) starts from the distribution of
//! offload sizes `g`: the break-even analysis picks a threshold, the CDF
//! tells us what fraction of offloads clear it, and that fraction scales
//! both `n` (the lucrative offload count) and `α` (the kernel cycles worth
//! offloading). E.g. 64.2% of Feed1's compressions are ≥ 425 B, so
//! off-chip Sync compression uses `n = 9,629` of the total 15,008
//! offloads per second.

use serde::{Deserialize, Serialize};

use crate::breakeven::BreakEven;
use crate::error::{ModelError, Result};
use crate::units::Bytes;

/// A cumulative distribution over offload granularities, stored as
/// piecewise-linear breakpoints `(bytes, cumulative fraction)`.
///
/// Between breakpoints the CDF is linearly interpolated, matching how one
/// reads probabilities off the paper's bucketed CDF plots. Below the first
/// breakpoint the CDF is interpolated from `(0, 0)` unless the first
/// breakpoint is itself at zero bytes (a "0-byte" bucket, as in Figs. 21
/// and 22 where some copies/allocations are empty).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularityCdf {
    points: Vec<(f64, f64)>,
}

impl GranularityCdf {
    /// Builds a CDF from `(upper bound in bytes, cumulative fraction)`
    /// breakpoints.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyDistribution`] if `points` is empty.
    /// * [`ModelError::NonMonotonicCdf`] if byte bounds are not strictly
    ///   increasing, fractions are not non-decreasing, any fraction is
    ///   outside `[0, 1]`, or the final fraction is not 1.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(ModelError::EmptyDistribution);
        }
        let mut prev_g = -1.0_f64;
        let mut prev_f = 0.0_f64;
        for (i, &(g, f)) in points.iter().enumerate() {
            if !(g.is_finite() && f.is_finite()) || g < 0.0 || !(0.0..=1.0).contains(&f) {
                return Err(ModelError::NonMonotonicCdf { index: i });
            }
            if g <= prev_g || f < prev_f {
                return Err(ModelError::NonMonotonicCdf { index: i });
            }
            prev_g = g;
            prev_f = f;
        }
        if (prev_f - 1.0).abs() > 1e-9 {
            return Err(ModelError::NonMonotonicCdf {
                index: points.len() - 1,
            });
        }
        Ok(Self { points })
    }

    /// Builds a CDF from per-bucket counts: `buckets[i]` holds the count
    /// of offloads whose size is at most `upper_bounds[i]` bytes and
    /// greater than the previous bound.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GranularityCdf::from_points`], plus
    /// [`ModelError::EmptyDistribution`] when all counts are zero or the
    /// slice lengths differ.
    pub fn from_bucket_counts(upper_bounds: &[f64], counts: &[u64]) -> Result<Self> {
        if upper_bounds.len() != counts.len() || upper_bounds.is_empty() {
            return Err(ModelError::EmptyDistribution);
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(ModelError::EmptyDistribution);
        }
        let mut cumulative = 0u64;
        let points = upper_bounds
            .iter()
            .zip(counts)
            .map(|(&g, &c)| {
                cumulative += c;
                (g, cumulative as f64 / total as f64)
            })
            .collect();
        Self::from_points(points)
    }

    /// The breakpoints `(bytes, cumulative fraction)`.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The largest granularity in the distribution's support.
    #[must_use]
    pub fn max_bytes(&self) -> Bytes {
        Bytes::new(self.points.last().expect("non-empty by construction").0)
    }

    /// `F(g)`: fraction of offloads of size at most `g` bytes, linearly
    /// interpolated between breakpoints.
    #[must_use]
    pub fn fraction_at_or_below(&self, g: Bytes) -> f64 {
        let x = g.get();
        if x < 0.0 {
            return 0.0;
        }
        let (mut g0, mut f0) = (0.0, 0.0);
        for &(g1, f1) in &self.points {
            if x <= g1 {
                if g1 == g0 {
                    return f1;
                }
                // Clamp: interpolation can overshoot by an ulp at bucket
                // edges, and F must remain a probability.
                return (f0 + (f1 - f0) * (x - g0) / (g1 - g0)).clamp(0.0, 1.0);
            }
            g0 = g1;
            f0 = f1;
        }
        1.0
    }

    /// `1 − F(g)`: fraction of offloads strictly larger than `g` bytes.
    #[must_use]
    pub fn fraction_above(&self, g: Bytes) -> f64 {
        1.0 - self.fraction_at_or_below(g)
    }

    /// Fraction of offloads that clear a break-even point.
    #[must_use]
    pub fn lucrative_fraction(&self, breakeven: BreakEven) -> f64 {
        match breakeven {
            BreakEven::AtLeast(min) => self.fraction_above(min),
            BreakEven::Always => 1.0 - self.fraction_at_or_below(Bytes::ZERO),
            BreakEven::Never => 0.0,
        }
    }

    /// The `p`-quantile (inverse CDF), clamping `p` into `[0, 1]`.
    ///
    /// Useful for inverse-transform sampling: draw `p` uniformly and map
    /// it through `quantile` to generate offload sizes that follow this
    /// distribution.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Bytes {
        let p = p.clamp(0.0, 1.0);
        let (mut g0, mut f0) = (0.0, 0.0);
        for &(g1, f1) in &self.points {
            if p <= f1 {
                if (f1 - f0).abs() < f64::EPSILON {
                    return Bytes::new(g1);
                }
                return Bytes::new(g0 + (g1 - g0) * (p - f0) / (f1 - f0));
            }
            g0 = g1;
            f0 = f1;
        }
        self.max_bytes()
    }

    /// Builds a precomputed inverse-CDF lookup for repeated quantile
    /// draws. [`GranularitySampler::quantile`] returns bit-identical
    /// results to [`GranularityCdf::quantile`] but binary-searches the
    /// breakpoints instead of scanning them, which matters when a
    /// simulator draws millions of granularities per run.
    #[must_use]
    pub fn sampler(&self) -> GranularitySampler {
        GranularitySampler {
            bytes: self.points.iter().map(|&(g, _)| g).collect(),
            fractions: self.points.iter().map(|&(_, f)| f).collect(),
        }
    }

    /// Mean granularity, `E[g] = ∫ (1 − F(g)) dg` over the support.
    #[must_use]
    pub fn mean_bytes(&self) -> Bytes {
        Bytes::new(self.integral_of_survival(0.0))
    }

    /// Partial expectation `E[g · 1{g > t}] = t·(1 − F(t)) + ∫ₜ (1 − F) dg`.
    #[must_use]
    pub fn partial_mean_above(&self, t: Bytes) -> Bytes {
        let t = t.get().max(0.0);
        let survival_at_t = 1.0 - self.fraction_at_or_below(Bytes::new(t));
        Bytes::new(t * survival_at_t + self.integral_of_survival(t))
    }

    /// Fraction of total offloaded *bytes* (≈ kernel cycles for a linear
    /// kernel) carried by offloads larger than `t`.
    ///
    /// This is the byte-weighted alternative to the count-weighted
    /// lucrative fraction; the paper scales `α` by offload *count*, and the
    /// difference between the two weightings is explored by the ablation
    /// benches.
    #[must_use]
    pub fn byte_weighted_fraction_above(&self, t: Bytes) -> f64 {
        let mean = self.mean_bytes().get();
        if mean <= 0.0 {
            return 0.0;
        }
        self.partial_mean_above(t).get() / mean
    }

    /// `∫ₜ^∞ (1 − F(g)) dg` with piecewise-linear `F`.
    fn integral_of_survival(&self, t: f64) -> f64 {
        let mut total = 0.0;
        let (mut g0, mut f0): (f64, f64) = (0.0, 0.0);
        for &(g1, f1) in &self.points {
            let lo = g0.max(t);
            if g1 > lo {
                // Survival is linear from (g0, 1-f0) to (g1, 1-f1);
                // integrate the trapezoid over [lo, g1].
                let s_at = |x: f64| {
                    if g1 == g0 {
                        1.0 - f1
                    } else {
                        1.0 - (f0 + (f1 - f0) * (x - g0) / (g1 - g0))
                    }
                };
                total += (s_at(lo) + s_at(g1)) / 2.0 * (g1 - lo);
            }
            g0 = g1;
            f0 = f1;
        }
        total
    }
}

/// A precomputed inverse-CDF sampler over a [`GranularityCdf`].
///
/// Built once via [`GranularityCdf::sampler`], it answers quantile
/// queries with a binary search (`partition_point`) over the cumulative
/// fractions instead of the linear scan [`GranularityCdf::quantile`]
/// performs, while reproducing that scan's arithmetic exactly — every
/// draw is bit-identical between the two, which the simulator's
/// calibration tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularitySampler {
    bytes: Vec<f64>,
    fractions: Vec<f64>,
}

impl GranularitySampler {
    /// The `p`-quantile (inverse CDF), clamping `p` into `[0, 1]`.
    ///
    /// Bit-identical to [`GranularityCdf::quantile`] on the source CDF.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Bytes {
        let p = p.clamp(0.0, 1.0);
        // First breakpoint with f1 >= p — exactly where the linear scan's
        // `p <= f1` test first fires.
        let idx = self.fractions.partition_point(|&f| f < p);
        if idx >= self.fractions.len() {
            return Bytes::new(*self.bytes.last().expect("non-empty by construction"));
        }
        let (g1, f1) = (self.bytes[idx], self.fractions[idx]);
        let (g0, f0) = if idx == 0 {
            (0.0, 0.0)
        } else {
            (self.bytes[idx - 1], self.fractions[idx - 1])
        };
        if (f1 - f0).abs() < f64::EPSILON {
            return Bytes::new(g1);
        }
        Bytes::new(g0 + (g1 - g0) * (p - f0) / (f1 - f0))
    }

    /// The largest granularity in the distribution's support.
    #[must_use]
    pub fn max_bytes(&self) -> Bytes {
        Bytes::new(*self.bytes.last().expect("non-empty by construction"))
    }
}

/// The effective model inputs after restricting offloading to lucrative
/// granularities (§4 validation methodology, steps 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LucrativeSelection {
    /// Fraction of offloads that clear the break-even point.
    pub fraction: f64,
    /// Effective offload count `n` (lucrative offloads per window).
    pub offloads: f64,
    /// Effective kernel fraction `α` scaled to lucrative offloads only.
    pub alpha: f64,
}

/// Scales total offload count and kernel fraction down to the lucrative
/// subset, the way §5 derives Table 7's `n` and effective `α` from the
/// compression CDF: `n_eff = n_total · (1 − F(g*))` and
/// `α_eff = α · (1 − F(g*))`.
#[must_use]
pub fn select_lucrative(
    cdf: &GranularityCdf,
    total_offloads: f64,
    alpha: f64,
    breakeven: BreakEven,
) -> LucrativeSelection {
    let fraction = cdf.lucrative_fraction(breakeven);
    LucrativeSelection {
        fraction,
        offloads: total_offloads * fraction,
        alpha: alpha * fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::bytes;
    use proptest::prelude::*;

    fn simple() -> GranularityCdf {
        GranularityCdf::from_points(vec![(100.0, 0.25), (200.0, 0.5), (400.0, 1.0)]).unwrap()
    }

    #[test]
    fn rejects_bad_constructions() {
        assert_eq!(
            GranularityCdf::from_points(vec![]).unwrap_err(),
            ModelError::EmptyDistribution
        );
        // Non-increasing bytes.
        assert!(GranularityCdf::from_points(vec![(10.0, 0.5), (10.0, 1.0)]).is_err());
        // Decreasing fractions.
        assert!(GranularityCdf::from_points(vec![(10.0, 0.5), (20.0, 0.4)]).is_err());
        // Doesn't end at 1.
        assert!(GranularityCdf::from_points(vec![(10.0, 0.5)]).is_err());
        // Out-of-range fraction.
        assert!(GranularityCdf::from_points(vec![(10.0, 1.5)]).is_err());
        // Negative bytes.
        assert!(GranularityCdf::from_points(vec![(-1.0, 0.5), (2.0, 1.0)]).is_err());
    }

    #[test]
    fn bucket_counts_constructor() {
        let cdf =
            GranularityCdf::from_bucket_counts(&[64.0, 128.0, 256.0], &[50, 25, 25]).unwrap();
        assert!((cdf.fraction_at_or_below(bytes(64.0)) - 0.5).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(bytes(128.0)) - 0.75).abs() < 1e-12);
        assert!((cdf.fraction_at_or_below(bytes(256.0)) - 1.0).abs() < 1e-12);
        assert!(GranularityCdf::from_bucket_counts(&[64.0], &[0]).is_err());
        assert!(GranularityCdf::from_bucket_counts(&[64.0], &[1, 2]).is_err());
    }

    #[test]
    fn interpolation_within_buckets() {
        let cdf = simple();
        // Halfway into the first bucket: F(50) = 0.125 (from implicit
        // (0,0) anchor).
        assert!((cdf.fraction_at_or_below(bytes(50.0)) - 0.125).abs() < 1e-12);
        // Halfway between 100 and 200: F(150) = 0.375.
        assert!((cdf.fraction_at_or_below(bytes(150.0)) - 0.375).abs() < 1e-12);
        // Beyond support.
        assert_eq!(cdf.fraction_at_or_below(bytes(1e9)), 1.0);
        assert_eq!(cdf.fraction_at_or_below(bytes(-5.0)), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let cdf = simple();
        for p in [0.0, 0.1, 0.25, 0.375, 0.5, 0.75, 0.99, 1.0] {
            let g = cdf.quantile(p);
            let back = cdf.fraction_at_or_below(g);
            assert!((back - p).abs() < 1e-9, "p={p} g={g} back={back}");
        }
        // Clamping.
        assert_eq!(cdf.quantile(2.0), cdf.max_bytes());
        assert_eq!(cdf.quantile(-1.0).get(), 0.0);
    }

    #[test]
    fn zero_bucket_quantile_maps_to_zero_bytes() {
        // Fig. 21-style distribution with a 0-byte bucket holding 10%.
        let cdf = GranularityCdf::from_points(vec![(0.0, 0.1), (64.0, 1.0)]).unwrap();
        assert_eq!(cdf.quantile(0.05).get(), 0.0);
        assert!((cdf.fraction_at_or_below(bytes(0.0)) - 0.1).abs() < 1e-12);
        // The lucrative fraction under Always excludes empty offloads.
        assert!((cdf.lucrative_fraction(BreakEven::Always) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mean_of_uniform_distribution() {
        // CDF of Uniform(0, 100).
        let cdf = GranularityCdf::from_points(vec![(100.0, 1.0)]).unwrap();
        assert!((cdf.mean_bytes().get() - 50.0).abs() < 1e-9);
        // Partial mean above 50 for Uniform(0,100): E[g·1{g>50}] = 37.5.
        assert!((cdf.partial_mean_above(bytes(50.0)).get() - 37.5).abs() < 1e-9);
        // Byte-weighted fraction above 50 = 37.5/50 = 0.75.
        assert!((cdf.byte_weighted_fraction_above(bytes(50.0)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn feed1_compression_lucrative_counts_emerge() {
        // The Feed1 compression CDF is calibrated so that the §5 break-even
        // points select the paper's n values; mirror that shape here.
        let cdf = GranularityCdf::from_points(vec![
            (1.0, 0.02),
            (64.0, 0.08),
            (128.0, 0.15),
            (256.0, 0.262),
            (512.0, 0.407),
            (1024.0, 0.52),
            (2048.0, 0.71),
            (4096.0, 0.83),
            (8192.0, 0.90),
            (16384.0, 0.95),
            (32768.0, 0.98),
            (65536.0, 1.0),
        ])
        .unwrap();
        let n_total = 15_008.0;
        // Off-chip Sync: g* = 425 B → n ≈ 9,629.
        let sel = select_lucrative(&cdf, n_total, 0.15, BreakEven::AtLeast(bytes(425.0)));
        assert!((sel.offloads - 9_629.0).abs() < 60.0, "sync n = {}", sel.offloads);
        assert!((sel.fraction - 0.642).abs() < 0.005);
        assert!((sel.alpha - 0.0963).abs() < 0.001);
        // Async: g* ≈ 409 B → n ≈ 9,769.
        let sel = select_lucrative(&cdf, n_total, 0.15, BreakEven::AtLeast(bytes(409.2)));
        assert!((sel.offloads - 9_769.0).abs() < 60.0, "async n = {}", sel.offloads);
        // Sync-OS: g* ≈ 2,456 B → n ≈ 3,986.
        let sel = select_lucrative(&cdf, n_total, 0.15, BreakEven::AtLeast(bytes(2_455.5)));
        assert!((sel.offloads - 3_986.0).abs() < 60.0, "sync-os n = {}", sel.offloads);
    }

    #[test]
    fn never_breakeven_selects_nothing() {
        let sel = select_lucrative(&simple(), 1_000.0, 0.2, BreakEven::Never);
        assert_eq!(sel.offloads, 0.0);
        assert_eq!(sel.alpha, 0.0);
        assert_eq!(sel.fraction, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let cdf = simple();
        let json = serde_json::to_string(&cdf).unwrap();
        let back: GranularityCdf = serde_json::from_str(&json).unwrap();
        assert_eq!(cdf, back);
    }

    #[test]
    fn sampler_matches_linear_quantile_bitwise() {
        // Edge-heavy fixed probe set: clamped, exact breakpoints, flat
        // (zero-width) segments, and below-first-breakpoint draws.
        let cdfs = [
            simple(),
            GranularityCdf::from_points(vec![(0.0, 0.1), (64.0, 1.0)]).unwrap(),
            GranularityCdf::from_points(vec![(10.0, 0.5), (20.0, 0.5), (30.0, 1.0)]).unwrap(),
            GranularityCdf::from_points(vec![(425.0, 1.0)]).unwrap(),
        ];
        for cdf in &cdfs {
            let sampler = cdf.sampler();
            assert_eq!(sampler.max_bytes(), cdf.max_bytes());
            for i in 0..=1000 {
                let p = f64::from(i) / 1000.0;
                for probe in [p, p - 0.5, p + 0.5] {
                    let lin = cdf.quantile(probe).get();
                    let fast = sampler.quantile(probe).get();
                    assert_eq!(
                        lin.to_bits(),
                        fast.to_bits(),
                        "p={probe} lin={lin} fast={fast} cdf={:?}",
                        cdf.points()
                    );
                }
            }
            for &(_, f) in cdf.points() {
                assert_eq!(
                    cdf.quantile(f).get().to_bits(),
                    sampler.quantile(f).get().to_bits()
                );
            }
        }
    }

    proptest! {
        /// On arbitrary valid CDFs, the binary-search sampler reproduces
        /// the linear-scan quantile bit-for-bit — including at the exact
        /// breakpoint fractions where the scan's `p <= f1` test fires.
        #[test]
        fn sampler_matches_linear_quantile_on_random_cdfs(
            raw in prop::collection::vec((0.0_f64..1e6, 0.0_f64..1.0), 1..12),
            probes in prop::collection::vec(-0.2_f64..1.2, 1..64),
        ) {
            // Sort/dedup raw draws into a valid strictly-increasing CDF
            // ending at 1.0.
            let mut gs: Vec<f64> = raw.iter().map(|&(g, _)| g).collect();
            gs.sort_by(f64::total_cmp);
            gs.dedup();
            let mut fs: Vec<f64> = raw.iter().take(gs.len()).map(|&(_, f)| f).collect();
            fs.sort_by(f64::total_cmp);
            if let Some(last) = fs.last_mut() {
                *last = 1.0;
            }
            let points: Vec<(f64, f64)> = gs.into_iter().zip(fs).collect();
            if let Ok(cdf) = GranularityCdf::from_points(points) {
                let sampler = cdf.sampler();
                for &p in &probes {
                    prop_assert_eq!(
                        cdf.quantile(p).get().to_bits(),
                        sampler.quantile(p).get().to_bits()
                    );
                }
                for &(_, f) in cdf.points() {
                    prop_assert_eq!(
                        cdf.quantile(f).get().to_bits(),
                        sampler.quantile(f).get().to_bits()
                    );
                }
            }
        }
    }
}
