//! Design-space sweeps over model parameters.
//!
//! Architects use the model "to determine trade-offs between various
//! acceleration strategies" (§3, applications). A sweep evaluates a base
//! scenario across a range of one parameter — peak speedup `A`, interface
//! latency `L`, offload count `n`, or kernel fraction `α` — producing the
//! series a design-space plot needs. Multi-scenario batches fan out across
//! threads with `crossbeam`.

use serde::{Deserialize, Serialize};

use crate::model::Estimate;
use crate::model::Scenario;
use crate::params::ModelParams;

/// One point of a sweep: the swept parameter value and the model output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The value of the swept parameter.
    pub x: f64,
    /// The model estimate at that value.
    pub estimate: Estimate,
}

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum SweepAxis {
    /// Vary `A`, the accelerator's peak speedup.
    PeakSpeedup,
    /// Vary `L`, the interface latency in cycles.
    InterfaceLatency,
    /// Vary `n`, the offload count per window.
    Offloads,
    /// Vary `α`, the kernel's cycle fraction.
    KernelFraction,
    /// Vary `Q`, the mean queueing delay in cycles.
    Queueing,
    /// Vary `o1`, the thread-switch cost in cycles.
    ThreadSwitch,
}

fn rebuild(base: &Scenario, axis: SweepAxis, x: f64) -> Option<Scenario> {
    let p = &base.params;
    let ovh = p.overheads();
    let mut b = ModelParams::builder()
        .host_cycles(p.host_cycles().get())
        .kernel_fraction(p.kernel_fraction())
        .offloads(p.offloads())
        .setup_cycles(ovh.setup.get())
        .interface_cycles(ovh.interface.get())
        .queueing_cycles(ovh.queueing.get())
        .thread_switch_cycles(ovh.thread_switch.get())
        .peak_speedup(p.peak_speedup());
    b = match axis {
        SweepAxis::PeakSpeedup => b.peak_speedup(x),
        SweepAxis::InterfaceLatency => b.interface_cycles(x),
        SweepAxis::Offloads => b.offloads(x),
        SweepAxis::KernelFraction => b.kernel_fraction(x),
        SweepAxis::Queueing => b.queueing_cycles(x),
        SweepAxis::ThreadSwitch => b.thread_switch_cycles(x),
    };
    let params = b.build().ok()?;
    Some(Scenario {
        params,
        design: base.design,
        strategy: base.strategy,
        driver: base.driver,
    })
}

/// Sweeps one axis of a scenario over the given values.
///
/// Values that produce invalid parameter sets (e.g. `α > 1`) are skipped,
/// so the output may be shorter than `values`.
#[must_use]
pub fn sweep(base: &Scenario, axis: SweepAxis, values: &[f64]) -> Vec<SweepPoint> {
    values
        .iter()
        .filter_map(|&x| {
            rebuild(base, axis, x).map(|s| SweepPoint {
                x,
                estimate: s.estimate(),
            })
        })
        .collect()
}

/// Evaluates many independent scenarios in parallel.
///
/// The output preserves input order. Fan-out goes through
/// [`crate::exec::ExecPool`] with the process-wide default worker count,
/// so fleet-wide batch projections scale with cores while staying
/// byte-identical to a sequential evaluation.
#[must_use]
pub fn estimate_batch(scenarios: &[Scenario]) -> Vec<Estimate> {
    estimate_batch_with(&crate::exec::ExecPool::default(), scenarios)
}

/// [`estimate_batch`] with an explicit worker pool.
#[must_use]
pub fn estimate_batch_with(
    pool: &crate::exec::ExecPool,
    scenarios: &[Scenario],
) -> Vec<Estimate> {
    pool.map(scenarios, |_, s| s.estimate())
}

/// Generates logarithmically spaced sweep values between `lo` and `hi`.
///
/// # Panics
///
/// Panics if `lo` or `hi` is not positive, or `points < 2`.
#[must_use]
pub fn log_space(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "log_space requires 0 < lo < hi");
    assert!(points >= 2, "log_space requires at least two points");
    let step = (hi / lo).ln() / (points - 1) as f64;
    (0..points).map(|i| lo * (step * i as f64).exp()).collect()
}

/// Generates linearly spaced sweep values between `lo` and `hi`.
///
/// # Panics
///
/// Panics if `points < 2` or `hi <= lo`.
#[must_use]
pub fn lin_space(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "lin_space requires at least two points");
    assert!(hi > lo, "lin_space requires hi > lo");
    let step = (hi - lo) / (points - 1) as f64;
    (0..points).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DriverMode;
    use crate::strategy::AccelerationStrategy;
    use crate::threading::ThreadingDesign;

    fn base() -> Scenario {
        let params = ModelParams::builder()
            .host_cycles(2.3e9)
            .kernel_fraction(0.15)
            .offloads(9_629.0)
            .interface_cycles(2_300.0)
            .peak_speedup(27.0)
            .build()
            .unwrap();
        Scenario {
            params,
            design: ThreadingDesign::Sync,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::AwaitsAck,
        }
    }

    #[test]
    fn speedup_increases_with_a() {
        let points = sweep(&base(), SweepAxis::PeakSpeedup, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[1].estimate.throughput_speedup > w[0].estimate.throughput_speedup);
        }
    }

    #[test]
    fn speedup_decreases_with_l() {
        let points = sweep(
            &base(),
            SweepAxis::InterfaceLatency,
            &[0.0, 1_000.0, 5_000.0, 20_000.0],
        );
        for w in points.windows(2) {
            assert!(w[1].estimate.throughput_speedup < w[0].estimate.throughput_speedup);
        }
    }

    #[test]
    fn invalid_values_are_skipped() {
        let points = sweep(&base(), SweepAxis::KernelFraction, &[0.1, 1.5, 0.3]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].x, 0.1);
        assert_eq!(points[1].x, 0.3);
    }

    #[test]
    fn batch_matches_sequential() {
        let scenarios: Vec<Scenario> = (1..40)
            .map(|i| {
                let mut s = base();
                s.params = s.params.with_offloads(f64::from(i) * 100.0).unwrap();
                s
            })
            .collect();
        let parallel = estimate_batch(&scenarios);
        for (s, e) in scenarios.iter().zip(&parallel) {
            assert_eq!(s.estimate(), *e);
        }
        // Singleton path.
        assert_eq!(estimate_batch(&scenarios[..1])[0], scenarios[0].estimate());
        assert!(estimate_batch(&[]).is_empty());
    }

    #[test]
    fn log_space_endpoints_and_growth() {
        let v = log_space(1.0, 1_000.0, 4);
        assert_eq!(v.len(), 4);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[3] - 1_000.0).abs() < 1e-9);
        assert!((v[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lin_space_endpoints() {
        let v = lin_space(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic(expected = "log_space requires")]
    fn log_space_rejects_zero_lo() {
        let _ = log_space(0.0, 10.0, 3);
    }
}
