//! Multi-kernel acceleration: several overheads offloaded at once.
//!
//! §5 closes its off-chip discussion with: "off-chip encryption
//! accelerators can be extended to perform compression to leverage
//! improving two kernels for the price of one offload." This module
//! models that composition: a set of kernels, each with its own `αᵢ`,
//! `nᵢ`, and `Aᵢ`, offloaded either to **separate** devices (each offload
//! pays its own overheads) or to one **fused** device (co-resident data
//! is processed by both kernels per dispatch, so the dispatch overheads
//! are paid once).
//!
//! The combined-speedup denominator generalizes eqns (1)/(3)/(6):
//! `CS/C = (1 − Σαᵢ) + Σ keepᵢ·αᵢ/Aᵢ + overhead terms`, where the
//! overhead term is `Σ nᵢ·ovhᵢ/C` for separate devices and
//! `n_fused·ovh/C` for a fused one.

use serde::{Deserialize, Serialize};

use crate::error::{ensure, Result};
use crate::model::{throughput_overhead_per_offload_raw, DriverMode, Estimate};
use crate::params::OffloadOverheads;
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;
use crate::units::Cycles;

/// One kernel in a multi-kernel acceleration plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelComponent {
    /// `αᵢ`: this kernel's fraction of host cycles.
    pub alpha: f64,
    /// `nᵢ`: offloads per window when dispatched alone.
    pub offloads: f64,
    /// `Aᵢ`: the device's peak speedup for this kernel.
    pub peak_speedup: f64,
}

/// A multi-kernel acceleration plan sharing one threading design and
/// strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiKernelPlan {
    /// Host cycles per window (`C`).
    pub host_cycles: Cycles,
    /// The kernels under acceleration.
    pub kernels: Vec<KernelComponent>,
    /// Per-offload overheads (`o0`, `L`, `Q`, `o1`) of the device(s).
    pub overheads: OffloadOverheads,
    /// Threading design used for every offload.
    pub design: ThreadingDesign,
    /// Acceleration strategy.
    pub strategy: AccelerationStrategy,
    /// Driver behaviour.
    pub driver: DriverMode,
}

impl MultiKernelPlan {
    fn validate(&self) -> Result<()> {
        let total_alpha: f64 = self.kernels.iter().map(|k| k.alpha).sum();
        ensure(
            !self.kernels.is_empty(),
            "kernels",
            0.0,
            "plan needs at least one kernel",
        )?;
        ensure(
            total_alpha > 0.0 && total_alpha < 1.0,
            "alpha",
            total_alpha,
            "combined kernel fractions must satisfy 0 < sum < 1",
        )?;
        for k in &self.kernels {
            ensure(
                k.alpha > 0.0 && k.alpha < 1.0,
                "alpha",
                k.alpha,
                "each kernel fraction must be in (0, 1)",
            )?;
            ensure(
                k.offloads >= 0.0 && k.offloads.is_finite(),
                "n",
                k.offloads,
                "offload counts must be finite and non-negative",
            )?;
            ensure(
                k.peak_speedup >= 1.0,
                "A",
                k.peak_speedup,
                "peak speedups must be at least 1",
            )?;
        }
        Ok(())
    }

    fn base_denominators(&self) -> (f64, f64) {
        let total_alpha: f64 = self.kernels.iter().map(|k| k.alpha).sum();
        let accel_time: f64 = self.kernels.iter().map(|k| k.alpha / k.peak_speedup).sum();
        let mut cs = 1.0 - total_alpha;
        if self.design.accelerator_time_on_throughput_path() {
            cs += accel_time;
        }
        let mut cl = 1.0 - total_alpha;
        if crate::model::accelerator_time_in_latency(self.design, self.strategy) {
            cl += accel_time;
        }
        (cs, cl)
    }

    fn per_offload_overheads(&self) -> (f64, f64) {
        let s = throughput_overhead_per_offload_raw(
            self.overheads,
            self.design,
            self.strategy,
            self.driver,
        )
        .get();
        let l = crate::model::latency_overhead_per_offload_raw(self.overheads, self.design).get();
        (s, l)
    }

    /// Estimates the plan with each kernel on its **own** device: every
    /// kernel's offloads pay the dispatch overheads independently.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] for invalid
    /// fractions, counts, or speedups.
    pub fn estimate_separate(&self) -> Result<Estimate> {
        self.validate()?;
        let (mut cs, mut cl) = self.base_denominators();
        let (ovh_s, ovh_l) = self.per_offload_overheads();
        let c = self.host_cycles.get();
        let total_offloads: f64 = self.kernels.iter().map(|k| k.offloads).sum();
        cs += total_offloads * ovh_s / c;
        cl += total_offloads * ovh_l / c;
        Ok(self.finish(cs, cl))
    }

    /// Estimates the plan on one **fused** device: the kernels process
    /// the same dispatched data, so dispatch overheads are paid once per
    /// fused offload. `fused_offloads` is the dispatch count of the fused
    /// stream (typically `max(nᵢ)`, or the RPC rate when every message
    /// takes both kernels).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::InvalidParameter`] on invalid
    /// components or a negative `fused_offloads`.
    pub fn estimate_fused(&self, fused_offloads: f64) -> Result<Estimate> {
        self.validate()?;
        ensure(
            fused_offloads >= 0.0 && fused_offloads.is_finite(),
            "n",
            fused_offloads,
            "fused offload count must be finite and non-negative",
        )?;
        let (mut cs, mut cl) = self.base_denominators();
        let (ovh_s, ovh_l) = self.per_offload_overheads();
        let c = self.host_cycles.get();
        cs += fused_offloads * ovh_s / c;
        cl += fused_offloads * ovh_l / c;
        Ok(self.finish(cs, cl))
    }

    /// The fusion dividend: percentage points of throughput gained by
    /// fusing relative to separate devices.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the two estimates.
    pub fn fusion_gain_points(&self, fused_offloads: f64) -> Result<f64> {
        let fused = self.estimate_fused(fused_offloads)?;
        let separate = self.estimate_separate()?;
        Ok(fused.throughput_gain_percent() - separate.throughput_gain_percent())
    }

    fn finish(&self, cs: f64, cl: f64) -> Estimate {
        Estimate {
            throughput_speedup: 1.0 / cs,
            latency_reduction: 1.0 / cl,
            host_cycles_accelerated: self.host_cycles * cs,
            request_path_cycles: self.host_cycles * cl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{estimate, Scenario};
    use crate::params::ModelParams;

    /// Cache1-flavored plan: encryption + compression on an off-chip
    /// device, asynchronously.
    fn plan() -> MultiKernelPlan {
        MultiKernelPlan {
            host_cycles: Cycles::new(2.3e9),
            kernels: vec![
                KernelComponent {
                    alpha: 0.19154, // encryption
                    offloads: 101_863.0,
                    peak_speedup: 27.0,
                },
                KernelComponent {
                    alpha: 0.10, // compression
                    offloads: 101_863.0,
                    peak_speedup: 27.0,
                },
            ],
            overheads: OffloadOverheads::new(0.0, 2_530.0, 0.0, 0.0),
            design: ThreadingDesign::AsyncNoResponse,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::AwaitsAck,
        }
    }

    #[test]
    fn single_kernel_plan_matches_the_base_model() {
        let mut p = plan();
        p.kernels.truncate(1);
        let combined = p.estimate_separate().unwrap();
        let params = ModelParams::builder()
            .host_cycles(2.3e9)
            .kernel_fraction(0.19154)
            .offloads(101_863.0)
            .interface_cycles(2_530.0)
            .peak_speedup(27.0)
            .build()
            .unwrap();
        let single = estimate(&params, p.design, p.strategy, p.driver);
        assert!((combined.throughput_speedup - single.throughput_speedup).abs() < 1e-12);
        assert!((combined.latency_reduction - single.latency_reduction).abs() < 1e-12);
    }

    #[test]
    fn fusion_pays_the_overhead_once() {
        let p = plan();
        let separate = p.estimate_separate().unwrap();
        // Fused: every message takes both kernels → one dispatch per
        // message (101,863 dispatches instead of 203,726).
        let fused = p.estimate_fused(101_863.0).unwrap();
        assert!(
            fused.throughput_speedup > separate.throughput_speedup,
            "fused {} vs separate {}",
            fused.throughput_speedup,
            separate.throughput_speedup
        );
        // The §5 claim quantified: here fusion is worth >4 points.
        let gain = p.fusion_gain_points(101_863.0).unwrap();
        assert!(gain > 4.0, "fusion dividend {gain:.2} points");
        // And fusing two kernels beats accelerating encryption alone.
        let mut enc_only = p.clone();
        enc_only.kernels.truncate(1);
        let single = enc_only.estimate_separate().unwrap();
        assert!(fused.throughput_speedup > single.throughput_speedup);
    }

    #[test]
    fn equal_dispatch_counts_make_fused_and_separate_agree() {
        // If the fused stream dispatches as often as both kernels did
        // separately, there is no dividend.
        let p = plan();
        let separate = p.estimate_separate().unwrap();
        let fused = p.estimate_fused(203_726.0).unwrap();
        assert!((fused.throughput_speedup - separate.throughput_speedup).abs() < 1e-12);
    }

    #[test]
    fn sync_fused_plan_keeps_both_accelerator_times() {
        let mut p = plan();
        p.design = ThreadingDesign::Sync;
        let est = p.estimate_fused(101_863.0).unwrap();
        // Denominator must include both α/A terms.
        let expected_accel = 0.19154 / 27.0 + 0.10 / 27.0;
        let denom = 1.0 / est.throughput_speedup;
        let base = 1.0 - 0.29154 + expected_accel;
        assert!(denom > base, "accelerator time missing from {denom}");
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = plan();
        p.kernels.clear();
        assert!(p.estimate_separate().is_err());

        let mut p = plan();
        p.kernels[0].alpha = 0.95; // sum > 1
        assert!(p.estimate_separate().is_err());

        let mut p = plan();
        p.kernels[0].peak_speedup = 0.5;
        assert!(p.estimate_fused(10.0).is_err());

        let p = plan();
        assert!(p.estimate_fused(-1.0).is_err());
    }

    #[test]
    fn latency_accounts_for_the_request_path() {
        let p = plan();
        let fused = p.estimate_fused(101_863.0).unwrap();
        // Off-chip no-response: latency includes accelerator time, so
        // latency reduction trails the throughput speedup.
        assert!(fused.latency_reduction < fused.throughput_speedup);
        assert!(fused.latency_reduction > 1.0);
    }

    #[test]
    fn scenario_equivalence_for_combined_alpha() {
        // A fused plan where both kernels share A equals a single-kernel
        // scenario with the summed alpha.
        let p = plan();
        let fused = p.estimate_fused(101_863.0).unwrap();
        let params = ModelParams::builder()
            .host_cycles(2.3e9)
            .kernel_fraction(0.29154)
            .offloads(101_863.0)
            .interface_cycles(2_530.0)
            .peak_speedup(27.0)
            .build()
            .unwrap();
        let scenario = Scenario::new(params, p.design, p.strategy).with_driver(p.driver);
        let single = scenario.estimate();
        assert!((fused.throughput_speedup - single.throughput_speedup).abs() < 1e-12);
    }
}
