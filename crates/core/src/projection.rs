//! High-level speedup projections: from a measured kernel profile and a
//! candidate accelerator to a full Accelerometer estimate.
//!
//! This module packages the paper's five-step validation/application
//! methodology (§4, §5):
//!
//! 1. identify the offload sizes `g` that improve speedup (break-even),
//! 2. determine the lucrative offload count `n` and the effective kernel
//!    fraction `α` from the granularity CDF,
//! 3. evaluate the model (eqns 1–8),
//! 4. compare against the ideal (Amdahl) bound, and
//! 5. report everything a capacity planner needs.

use serde::{Deserialize, Serialize};

use crate::amdahl;
use crate::breakeven::{throughput_breakeven, BreakEven, OffloadContext};
use crate::complexity::KernelCost;
use crate::error::Result;
use crate::granularity::{select_lucrative, GranularityCdf, LucrativeSelection};
use crate::model::{estimate, DriverMode, Estimate};
use crate::params::{ModelParams, OffloadOverheads};
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;
use crate::units::Cycles;

/// The host-side profile of one kernel (functionality) to accelerate, as
/// measured by a profiler such as Strobelight plus granularity tracing
/// (`bpftrace` in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// `C`: total host cycles in the accounting window.
    pub total_cycles: Cycles,
    /// `α`: the kernel's share of host cycles (all invocations).
    pub kernel_fraction: f64,
    /// Total kernel invocations (offload opportunities) per window.
    pub total_offloads: f64,
    /// Host-side cost model (`Cb`, `β`).
    pub cost: KernelCost,
    /// Distribution of invocation granularities.
    pub granularity: GranularityCdf,
}

/// A candidate accelerator for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    /// Where the accelerator sits.
    pub strategy: AccelerationStrategy,
    /// `A`: peak speedup over the host implementation.
    pub peak_speedup: f64,
    /// Per-offload overhead cycles (`o0`, `L`, `Q`, `o1`).
    pub overheads: OffloadOverheads,
}

/// Which kernel invocations the runtime offloads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum OffloadPolicy {
    /// Offload only granularities that clear the throughput break-even
    /// point (the paper's default assumption: "we can use software to
    /// selectively accelerate only those kernel offloads that improve
    /// speedup").
    #[default]
    SelectiveLucrative,
    /// Offload every invocation, as Cache3 does (§4, case study 2: its
    /// software "does not support selectively offloading") and as the §5
    /// on-chip projections assume.
    OffloadAll,
}

/// A complete projection for one kernel × accelerator × threading design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// The threading design assumed.
    pub design: ThreadingDesign,
    /// The acceleration strategy.
    pub strategy: AccelerationStrategy,
    /// The offload policy applied.
    pub policy: OffloadPolicy,
    /// The minimum lucrative granularity for this configuration.
    pub breakeven: BreakEven,
    /// The selected offloads (`n`, effective `α`, fraction of total).
    pub selection: LucrativeSelection,
    /// The model's estimate for the selected offloads.
    pub estimate: Estimate,
    /// The Amdahl bound with zero overheads and this accelerator's `A`,
    /// over the kernel's *full* cycle fraction.
    pub amdahl_bound: f64,
    /// The ideal bound: infinite acceleration of the full kernel fraction
    /// with zero overheads (`1/(1−α)`), the paper's "Ideal" bars.
    pub ideal_speedup: f64,
}

impl Projection {
    /// Fraction of the ideal gain this configuration realizes:
    /// `(S − 1) / (S_ideal − 1)`.
    #[must_use]
    pub fn efficiency_vs_ideal(&self) -> f64 {
        let ideal_gain = self.ideal_speedup - 1.0;
        if ideal_gain <= 0.0 {
            return 0.0;
        }
        (self.estimate.throughput_speedup - 1.0) / ideal_gain
    }
}

/// Projects the speedup and latency reduction for accelerating `profile`'s
/// kernel with `accel` under `design`, defaulting the driver mode from the
/// strategy.
///
/// # Errors
///
/// Returns [`crate::ModelError::InvalidParameter`] if the derived model
/// parameters are invalid (e.g. a non-finite `α`).
///
/// # Examples
///
/// Feed1's off-chip synchronous compression (§5) projects ≈9% speedup:
///
/// ```
/// use accelerometer::units::{cycles, cycles_per_byte};
/// use accelerometer::{
///     project, AccelerationStrategy, AcceleratorSpec, GranularityCdf, KernelCost,
///     KernelProfile, OffloadOverheads, OffloadPolicy, ThreadingDesign,
/// };
///
/// let profile = KernelProfile {
///     total_cycles: cycles(2.3e9),
///     kernel_fraction: 0.15,
///     total_offloads: 15_008.0,
///     cost: KernelCost::linear(cycles_per_byte(5.62)),
///     granularity: GranularityCdf::from_points(vec![
///         (1.0, 0.02), (64.0, 0.08), (128.0, 0.15), (256.0, 0.262),
///         (512.0, 0.407), (1024.0, 0.52), (2048.0, 0.71), (4096.0, 0.83),
///         (8192.0, 0.90), (16384.0, 0.95), (32768.0, 0.98), (65536.0, 1.0),
///     ])?,
/// };
/// let accel = AcceleratorSpec {
///     strategy: AccelerationStrategy::OffChip,
///     peak_speedup: 27.0,
///     overheads: OffloadOverheads::new(0.0, 2_300.0, 0.0, 0.0),
/// };
/// let p = project(
///     &profile,
///     &accel,
///     ThreadingDesign::Sync,
///     OffloadPolicy::SelectiveLucrative,
/// )?;
/// assert!((p.estimate.throughput_gain_percent() - 9.0).abs() < 0.3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn project(
    profile: &KernelProfile,
    accel: &AcceleratorSpec,
    design: ThreadingDesign,
    policy: OffloadPolicy,
) -> Result<Projection> {
    let ctx = OffloadContext::new(accel.overheads, accel.peak_speedup, design, accel.strategy);
    project_with_context(profile, accel, &ctx, policy)
}

/// Like [`project`], but with an explicit [`OffloadContext`] (e.g. to
/// override the driver mode).
///
/// # Errors
///
/// Same as [`project`].
pub fn project_with_context(
    profile: &KernelProfile,
    accel: &AcceleratorSpec,
    ctx: &OffloadContext,
    policy: OffloadPolicy,
) -> Result<Projection> {
    project_inner(profile, accel, ctx, policy, None)
}

/// Like [`project_with_context`], but evaluating the model under the
/// fault/recovery regime described by `load` (see
/// [`estimate_with_faults`](crate::model::estimate_with_faults)):
/// retries inflate the per-offload overheads and accelerator time by
/// the expected attempts, and exhausted sagas under a fallback policy
/// land their kernel work back on the host. The break-even point and
/// lucrative selection are computed from the healthy overheads — the
/// offload policy is decided at design time, the faults arrive later.
///
/// # Errors
///
/// Same as [`project`].
pub fn project_with_faults(
    profile: &KernelProfile,
    accel: &AcceleratorSpec,
    ctx: &OffloadContext,
    policy: OffloadPolicy,
    load: &crate::queueing::FaultLoad,
) -> Result<Projection> {
    project_inner(profile, accel, ctx, policy, Some(load))
}

fn project_inner(
    profile: &KernelProfile,
    accel: &AcceleratorSpec,
    ctx: &OffloadContext,
    policy: OffloadPolicy,
    load: Option<&crate::queueing::FaultLoad>,
) -> Result<Projection> {
    let breakeven = throughput_breakeven(&profile.cost, ctx);
    let selection = match policy {
        OffloadPolicy::SelectiveLucrative => select_lucrative(
            &profile.granularity,
            profile.total_offloads,
            profile.kernel_fraction,
            breakeven,
        ),
        OffloadPolicy::OffloadAll => LucrativeSelection {
            fraction: 1.0,
            offloads: profile.total_offloads,
            alpha: profile.kernel_fraction,
        },
    };

    let est = if selection.offloads <= 0.0 || selection.alpha <= 0.0 {
        // Nothing offloaded: acceleration is a no-op.
        Estimate {
            throughput_speedup: 1.0,
            latency_reduction: 1.0,
            host_cycles_accelerated: profile.total_cycles,
            request_path_cycles: profile.total_cycles,
        }
    } else {
        let params = ModelParams::builder()
            .host_cycles(profile.total_cycles.get())
            .kernel_fraction(selection.alpha)
            .offloads(selection.offloads)
            .overheads(accel.overheads)
            .peak_speedup(accel.peak_speedup)
            .build()?;
        match load {
            Some(load) => {
                crate::model::estimate_with_faults(&params, ctx.design, ctx.strategy, ctx.driver, load)
            }
            None => estimate(&params, ctx.design, ctx.strategy, ctx.driver),
        }
    };

    Ok(Projection {
        design: ctx.design,
        strategy: ctx.strategy,
        policy,
        breakeven,
        selection,
        estimate: est,
        amdahl_bound: amdahl::speedup(profile.kernel_fraction, accel.peak_speedup),
        ideal_speedup: amdahl::ideal_speedup(profile.kernel_fraction),
    })
}

/// Convenience: the driver mode an [`OffloadContext`] built from this
/// spec would use.
#[must_use]
pub fn default_driver(strategy: AccelerationStrategy) -> DriverMode {
    if strategy.driver_awaits_ack_by_default() {
        DriverMode::AwaitsAck
    } else {
        DriverMode::Posted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{cycles, cycles_per_byte};

    fn feed1_compression() -> KernelProfile {
        KernelProfile {
            total_cycles: cycles(2.3e9),
            kernel_fraction: 0.15,
            total_offloads: 15_008.0,
            cost: KernelCost::linear(cycles_per_byte(5.62)),
            granularity: GranularityCdf::from_points(vec![
                (1.0, 0.02),
                (64.0, 0.08),
                (128.0, 0.15),
                (256.0, 0.262),
                (512.0, 0.407),
                (1024.0, 0.52),
                (2048.0, 0.71),
                (4096.0, 0.83),
                (8192.0, 0.90),
                (16384.0, 0.95),
                (32768.0, 0.98),
                (65536.0, 1.0),
            ])
            .unwrap(),
        }
    }

    fn off_chip_compressor() -> AcceleratorSpec {
        AcceleratorSpec {
            strategy: AccelerationStrategy::OffChip,
            peak_speedup: 27.0,
            overheads: OffloadOverheads::new(0.0, 2_300.0, 0.0, 5_750.0),
        }
    }

    fn on_chip_compressor() -> AcceleratorSpec {
        AcceleratorSpec {
            strategy: AccelerationStrategy::OnChip,
            peak_speedup: 5.0,
            overheads: OffloadOverheads::NONE,
        }
    }

    /// Fig. 20 Feed1 compression, on-chip Sync: 13.6% speedup (and the
    /// paper notes latency reduction is also 13.6%); ideal is 17.6%.
    #[test]
    fn fig20_compression_on_chip() {
        let p = project(
            &feed1_compression(),
            &on_chip_compressor(),
            ThreadingDesign::Sync,
            OffloadPolicy::OffloadAll,
        )
        .unwrap();
        assert!(
            (p.estimate.throughput_gain_percent() - 13.6).abs() < 0.1,
            "speedup {}",
            p.estimate.throughput_gain_percent()
        );
        assert!((p.estimate.latency_gain_percent() - 13.6).abs() < 0.1);
        assert!((p.ideal_speedup - 1.176).abs() < 0.001);
    }

    /// Fault-aware projections: a healthy fault load is bit-identical
    /// to the plain projection, and faults monotonically shrink the
    /// projected gain.
    #[test]
    fn fault_projection_degenerates_and_degrades() {
        let profile = feed1_compression();
        let accel = on_chip_compressor();
        let ctx = OffloadContext::new(
            accel.overheads,
            accel.peak_speedup,
            ThreadingDesign::Sync,
            accel.strategy,
        );
        let plain =
            project_with_context(&profile, &accel, &ctx, OffloadPolicy::OffloadAll).unwrap();
        let healthy = crate::queueing::fault_load(0.0, 3, true).unwrap();
        let same = project_with_faults(
            &profile,
            &accel,
            &ctx,
            OffloadPolicy::OffloadAll,
            &healthy,
        )
        .unwrap();
        assert_eq!(plain, same);

        let degraded = crate::queueing::fault_load(0.3, 1, true).unwrap();
        let worse = project_with_faults(
            &profile,
            &accel,
            &ctx,
            OffloadPolicy::OffloadAll,
            &degraded,
        )
        .unwrap();
        assert!(
            worse.estimate.throughput_speedup < plain.estimate.throughput_speedup,
            "faults must shrink the projected gain: {} vs {}",
            worse.estimate.throughput_speedup,
            plain.estimate.throughput_speedup
        );
        // Selection and break-even are design-time decisions: identical.
        assert_eq!(worse.selection, plain.selection);
        assert_eq!(worse.breakeven, plain.breakeven);
    }

    /// Fig. 20 Feed1 compression, off-chip Sync: break-even 425 B, 64.2%
    /// of compressions lucrative, ≈9% speedup.
    #[test]
    fn fig20_compression_off_chip_sync() {
        let p = project(
            &feed1_compression(),
            &off_chip_compressor(),
            ThreadingDesign::Sync,
            OffloadPolicy::SelectiveLucrative,
        )
        .unwrap();
        let be = p.breakeven.threshold().unwrap();
        assert!((be.get() - 425.0).abs() < 1.0, "break-even {be}");
        assert!((p.selection.fraction - 0.642).abs() < 0.005);
        assert!((p.selection.offloads - 9_629.0).abs() < 60.0);
        assert!(
            (p.estimate.throughput_gain_percent() - 9.0).abs() < 0.3,
            "speedup {}",
            p.estimate.throughput_gain_percent()
        );
    }

    /// Fig. 20 Feed1 compression, off-chip Sync-OS: ≈1.6% speedup.
    #[test]
    fn fig20_compression_off_chip_sync_os() {
        let p = project(
            &feed1_compression(),
            &off_chip_compressor(),
            ThreadingDesign::SyncOs,
            OffloadPolicy::SelectiveLucrative,
        )
        .unwrap();
        assert!((p.selection.offloads - 3_986.0).abs() < 60.0, "n {}", p.selection.offloads);
        assert!(
            (p.estimate.throughput_gain_percent() - 1.6).abs() < 0.2,
            "speedup {}",
            p.estimate.throughput_gain_percent()
        );
    }

    /// Fig. 20 Feed1 compression, off-chip Async (no response): ≈9.6%
    /// speedup and ≈9.2% latency reduction.
    #[test]
    fn fig20_compression_off_chip_async() {
        let p = project(
            &feed1_compression(),
            &off_chip_compressor(),
            ThreadingDesign::AsyncNoResponse,
            OffloadPolicy::SelectiveLucrative,
        )
        .unwrap();
        assert!((p.selection.offloads - 9_769.0).abs() < 60.0, "n {}", p.selection.offloads);
        assert!(
            (p.estimate.throughput_gain_percent() - 9.6).abs() < 0.3,
            "speedup {}",
            p.estimate.throughput_gain_percent()
        );
        assert!(
            (p.estimate.latency_gain_percent() - 9.2).abs() < 0.3,
            "latency {}",
            p.estimate.latency_gain_percent()
        );
    }

    /// Fig. 20 Ads1 memory copy, on-chip Sync (AVX): 12.7% speedup from
    /// α = 0.1512, n = 1,473,681, A = 4.
    #[test]
    fn fig20_memcpy_on_chip() {
        let profile = KernelProfile {
            total_cycles: cycles(2.3e9),
            kernel_fraction: 0.1512,
            total_offloads: 1_473_681.0,
            cost: KernelCost::linear(cycles_per_byte(1.0)),
            granularity: GranularityCdf::from_points(vec![(4096.0, 1.0)]).unwrap(),
        };
        let accel = AcceleratorSpec {
            strategy: AccelerationStrategy::OnChip,
            peak_speedup: 4.0,
            overheads: OffloadOverheads::NONE,
        };
        let p = project(&profile, &accel, ThreadingDesign::Sync, OffloadPolicy::OffloadAll)
            .unwrap();
        assert!(
            (p.estimate.throughput_gain_percent() - 12.79).abs() < 0.1,
            "speedup {}",
            p.estimate.throughput_gain_percent()
        );
    }

    /// Fig. 20 Cache1 memory allocation, on-chip Sync (Mallacc-style):
    /// 1.86% speedup from α = 0.055, n = 51,695, A = 1.5.
    #[test]
    fn fig20_alloc_on_chip() {
        let profile = KernelProfile {
            total_cycles: cycles(2.0e9),
            kernel_fraction: 0.055,
            total_offloads: 51_695.0,
            cost: KernelCost::linear(cycles_per_byte(2.0)),
            granularity: GranularityCdf::from_points(vec![(4096.0, 1.0)]).unwrap(),
        };
        let accel = AcceleratorSpec {
            strategy: AccelerationStrategy::OnChip,
            peak_speedup: 1.5,
            overheads: OffloadOverheads::NONE,
        };
        let p = project(&profile, &accel, ThreadingDesign::Sync, OffloadPolicy::OffloadAll)
            .unwrap();
        assert!(
            (p.estimate.throughput_gain_percent() - 1.86).abs() < 0.05,
            "speedup {}",
            p.estimate.throughput_gain_percent()
        );
    }

    #[test]
    fn never_breakeven_yields_identity_projection() {
        // Sync offload to an A = 1 device: nothing is lucrative.
        let profile = feed1_compression();
        let accel = AcceleratorSpec {
            strategy: AccelerationStrategy::Remote,
            peak_speedup: 1.0,
            overheads: OffloadOverheads::new(100.0, 0.0, 0.0, 0.0),
        };
        let p = project(
            &profile,
            &accel,
            ThreadingDesign::Sync,
            OffloadPolicy::SelectiveLucrative,
        )
        .unwrap();
        assert_eq!(p.breakeven, BreakEven::Never);
        assert_eq!(p.estimate.throughput_speedup, 1.0);
        assert_eq!(p.selection.offloads, 0.0);
        assert_eq!(p.efficiency_vs_ideal(), 0.0);
    }

    #[test]
    fn selective_beats_offload_all_when_overheads_dominate() {
        // Under the paper's count-weighted α scaling, selective offload
        // wins whenever the per-offload overhead exceeds the *mean* kernel
        // cycles per offload. Here each offload averages only 10 host
        // cycles (α·C/n = 0.01·1e9/1e6) against a 2,300-cycle transfer, so
        // offloading everything is catastrophic while selective offload
        // merely fails to help much.
        let profile = KernelProfile {
            total_cycles: cycles(1e9),
            kernel_fraction: 0.01,
            total_offloads: 1_000_000.0,
            cost: KernelCost::linear(cycles_per_byte(5.62)),
            granularity: feed1_compression().granularity,
        };
        let accel = off_chip_compressor();
        let selective = project(
            &profile,
            &accel,
            ThreadingDesign::Sync,
            OffloadPolicy::SelectiveLucrative,
        )
        .unwrap();
        let all = project(&profile, &accel, ThreadingDesign::Sync, OffloadPolicy::OffloadAll)
            .unwrap();
        assert!(
            selective.estimate.throughput_speedup > all.estimate.throughput_speedup,
            "selective {} vs all {}",
            selective.estimate.throughput_speedup,
            all.estimate.throughput_speedup
        );
        assert!(!all.estimate.improves_throughput());
    }

    #[test]
    fn count_weighted_scaling_can_favor_offload_all() {
        // The dual of the test above, documenting the accounting the paper
        // uses: when overheads are small relative to the mean per-offload
        // kernel cycles (Feed1: ≈23k cycles/offload vs 2.3k transfer),
        // offloading everything projects higher than selective offload
        // because count-weighted α retains the below-threshold kernel
        // cycles on the host.
        let selective = project(
            &feed1_compression(),
            &off_chip_compressor(),
            ThreadingDesign::Sync,
            OffloadPolicy::SelectiveLucrative,
        )
        .unwrap();
        let all = project(
            &feed1_compression(),
            &off_chip_compressor(),
            ThreadingDesign::Sync,
            OffloadPolicy::OffloadAll,
        )
        .unwrap();
        assert!(all.estimate.throughput_speedup > selective.estimate.throughput_speedup);
    }

    #[test]
    fn efficiency_vs_ideal_is_bounded() {
        let p = project(
            &feed1_compression(),
            &on_chip_compressor(),
            ThreadingDesign::Sync,
            OffloadPolicy::OffloadAll,
        )
        .unwrap();
        let eff = p.efficiency_vs_ideal();
        assert!(eff > 0.0 && eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn default_driver_matches_strategy() {
        assert_eq!(default_driver(AccelerationStrategy::OnChip), DriverMode::Posted);
        assert_eq!(default_driver(AccelerationStrategy::OffChip), DriverMode::AwaitsAck);
        assert_eq!(default_driver(AccelerationStrategy::Remote), DriverMode::Posted);
    }
}
