//! Performance-bound diagnostics: *which* overhead limits a design.
//!
//! The model's purpose is "to identify performance bounds early in the
//! hardware design phase" (§1). A single speedup number says a design
//! under-delivers; this module says *why*, by decomposing the accelerated
//! host-cycle budget `CS` into its constituent terms (eqns 1/3/6) and
//! ranking them. Architects read the dominant term as the thing to fix:
//! a `Transfer`-bound design wants a faster interface or pipelining, a
//! `ThreadSwitch`-bound one wants a different threading design, an
//! `AcceleratorTime`-bound one wants a bigger `A` or asynchrony.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::{DriverMode, Scenario};
use crate::strategy::AccelerationStrategy;
use crate::threading::ThreadingDesign;

/// One component of the accelerated cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum BoundTerm {
    /// `(1−α)C`: the non-kernel logic the accelerator cannot touch — the
    /// Amdahl bound.
    NonKernel,
    /// `αC/A` on the host's critical path (Sync only).
    AcceleratorTime,
    /// `n·o0`: kernel setup.
    Setup,
    /// `n·(L+Q)` on the host path: interface transfer plus queueing.
    Transfer,
    /// `n·k·o1`: thread switching.
    ThreadSwitch,
}

impl BoundTerm {
    /// All terms in presentation order.
    pub const ALL: [BoundTerm; 5] = [
        BoundTerm::NonKernel,
        BoundTerm::AcceleratorTime,
        BoundTerm::Setup,
        BoundTerm::Transfer,
        BoundTerm::ThreadSwitch,
    ];

    /// What a designer does about this bound (Table 4-style guidance).
    #[must_use]
    pub fn remedy(self) -> &'static str {
        match self {
            BoundTerm::NonKernel => {
                "accelerate additional functionalities; this kernel is already near its Amdahl limit"
            }
            BoundTerm::AcceleratorTime => {
                "raise the accelerator's peak speedup A, or overlap with an asynchronous design"
            }
            BoundTerm::Setup => "batch offloads or shrink per-offload setup (o0)",
            BoundTerm::Transfer => {
                "faster/pipelined interface, kernel-bypass, or a posted driver (L, Q)"
            }
            BoundTerm::ThreadSwitch => {
                "same-thread asynchronous offload, or spin-wait hybrids to avoid o1"
            }
        }
    }
}

impl fmt::Display for BoundTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BoundTerm::NonKernel => "non-kernel logic",
            BoundTerm::AcceleratorTime => "accelerator time on host path",
            BoundTerm::Setup => "offload setup (o0)",
            BoundTerm::Transfer => "interface transfer + queueing (L+Q)",
            BoundTerm::ThreadSwitch => "thread switches (o1)",
        };
        f.write_str(name)
    }
}

/// The decomposition of the accelerated host-cycle budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundReport {
    /// `(term, fraction of C)` for each non-zero term, largest first
    /// excluding `NonKernel` (which is reported separately since it is
    /// almost always the largest and is not an *overhead*).
    pub overhead_terms: Vec<(BoundTerm, f64)>,
    /// `(1−α)`: the non-kernel fraction.
    pub non_kernel_fraction: f64,
    /// The achieved speedup.
    pub speedup: f64,
    /// The speedup if every offload overhead were zero (the design's own
    /// Amdahl/ideal ceiling, keeping the accelerator-time term for Sync).
    pub zero_overhead_speedup: f64,
}

impl BoundReport {
    /// The dominant *overhead* term, if any overhead exists.
    #[must_use]
    pub fn dominant_overhead(&self) -> Option<BoundTerm> {
        self.overhead_terms.first().map(|(t, _)| *t)
    }

    /// Fraction of the possible gain lost to offload overheads:
    /// `(S₀ − S) / (S₀ − 1)` where `S₀` is the zero-overhead speedup.
    #[must_use]
    pub fn overhead_penalty(&self) -> f64 {
        let ceiling = self.zero_overhead_speedup - 1.0;
        if ceiling <= 0.0 {
            return 0.0;
        }
        ((self.zero_overhead_speedup - self.speedup) / ceiling).max(0.0)
    }

    /// Renders the report as text.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "speedup {:.4}x (zero-overhead ceiling {:.4}x, {:.1}% of the gain lost to overheads)",
            self.speedup,
            self.zero_overhead_speedup,
            self.overhead_penalty() * 100.0
        );
        let _ = writeln!(
            out,
            "  non-kernel logic: {:.2}% of C (Amdahl bound)",
            self.non_kernel_fraction * 100.0
        );
        for (term, fraction) in &self.overhead_terms {
            let _ = writeln!(out, "  {term}: {:.3}% of C -> {}", fraction * 100.0, term.remedy());
        }
        out
    }
}

/// Decomposes a scenario's accelerated cycle budget into its bounding
/// terms.
#[must_use]
pub fn diagnose(scenario: &Scenario) -> BoundReport {
    let p = &scenario.params;
    let c = p.host_cycles().get();
    let n = p.offloads();
    let alpha = p.kernel_fraction();
    let ovh = p.overheads();
    let design = scenario.design;

    let accel_term = if design.accelerator_time_on_throughput_path() {
        alpha / p.peak_speedup()
    } else {
        0.0
    };
    let setup = n * ovh.setup.get() / c;
    let transfer_per_offload = transfer_on_throughput_path(
        design,
        scenario.strategy,
        scenario.driver,
        ovh.interface.get() + ovh.queueing.get(),
    );
    let transfer = n * transfer_per_offload / c;
    let switches = n * ovh.thread_switch.get() * design.thread_switches_on_throughput_path() / c;

    let mut overhead_terms: Vec<(BoundTerm, f64)> = [
        (BoundTerm::AcceleratorTime, accel_term),
        (BoundTerm::Setup, setup),
        (BoundTerm::Transfer, transfer),
        (BoundTerm::ThreadSwitch, switches),
    ]
    .into_iter()
    .filter(|(_, f)| *f > 0.0)
    .collect();
    overhead_terms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("fractions are finite"));

    let denominator = (1.0 - alpha) + accel_term + setup + transfer + switches;
    // Zero-overhead ceiling keeps only non-kernel + accelerator time.
    let ceiling_denominator = (1.0 - alpha) + accel_term;

    BoundReport {
        overhead_terms,
        non_kernel_fraction: 1.0 - alpha,
        speedup: 1.0 / denominator,
        zero_overhead_speedup: 1.0 / ceiling_denominator,
    }
}

fn transfer_on_throughput_path(
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
    transfer: f64,
) -> f64 {
    match design {
        ThreadingDesign::Sync => transfer,
        ThreadingDesign::SyncOs => match (strategy, driver) {
            (AccelerationStrategy::Remote, _) | (_, DriverMode::Posted) => 0.0,
            (_, DriverMode::AwaitsAck) => transfer,
        },
        _ => match strategy {
            AccelerationStrategy::Remote => 0.0,
            _ => transfer,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;

    fn scenario(
        o0: f64,
        l: f64,
        o1: f64,
        a: f64,
        design: ThreadingDesign,
        strategy: AccelerationStrategy,
    ) -> Scenario {
        let params = ModelParams::builder()
            .host_cycles(1e9)
            .kernel_fraction(0.2)
            .offloads(10_000.0)
            .setup_cycles(o0)
            .interface_cycles(l)
            .thread_switch_cycles(o1)
            .peak_speedup(a)
            .build()
            .unwrap();
        Scenario::new(params, design, strategy)
    }

    #[test]
    fn diagnosis_matches_estimate() {
        for design in ThreadingDesign::ALL {
            for strategy in AccelerationStrategy::ALL {
                let s = scenario(100.0, 2_000.0, 5_000.0, 8.0, design, strategy);
                let report = diagnose(&s);
                let est = s.estimate();
                assert!(
                    (report.speedup - est.throughput_speedup).abs() < 1e-12,
                    "{design:?}/{strategy:?}"
                );
            }
        }
    }

    #[test]
    fn transfer_bound_design_is_identified() {
        // Huge L, everything else small: Transfer dominates.
        let s = scenario(10.0, 50_000.0, 0.0, 100.0, ThreadingDesign::Sync, AccelerationStrategy::OffChip);
        let report = diagnose(&s);
        assert_eq!(report.dominant_overhead(), Some(BoundTerm::Transfer));
        assert!(report.overhead_penalty() > 0.5);
        assert!(report.render().contains("pipelined"));
    }

    #[test]
    fn switch_bound_sync_os_is_identified() {
        let s = scenario(0.0, 100.0, 20_000.0, 100.0, ThreadingDesign::SyncOs, AccelerationStrategy::OffChip);
        let report = diagnose(&s);
        assert_eq!(report.dominant_overhead(), Some(BoundTerm::ThreadSwitch));
        assert!(report.render().contains("same-thread"));
    }

    #[test]
    fn sync_low_a_is_accelerator_time_bound() {
        let s = scenario(0.0, 10.0, 0.0, 1.5, ThreadingDesign::Sync, AccelerationStrategy::OnChip);
        let report = diagnose(&s);
        assert_eq!(report.dominant_overhead(), Some(BoundTerm::AcceleratorTime));
        // The ceiling for Sync keeps αC/A: it is the Amdahl speedup.
        let amdahl = crate::amdahl::speedup(0.2, 1.5);
        assert!((report.zero_overhead_speedup - amdahl).abs() < 1e-12);
    }

    #[test]
    fn async_design_has_no_accelerator_term() {
        let s = scenario(50.0, 1_000.0, 0.0, 2.0, ThreadingDesign::AsyncSameThread, AccelerationStrategy::OffChip);
        let report = diagnose(&s);
        assert!(report
            .overhead_terms
            .iter()
            .all(|(t, _)| *t != BoundTerm::AcceleratorTime));
        // Ceiling is the ideal 1/(1-α).
        assert!((report.zero_overhead_speedup - 1.25).abs() < 1e-12);
    }

    #[test]
    fn remote_async_hides_transfer() {
        let s = scenario(50.0, 1e6, 0.0, 2.0, ThreadingDesign::AsyncNoResponse, AccelerationStrategy::Remote);
        let report = diagnose(&s);
        assert!(report
            .overhead_terms
            .iter()
            .all(|(t, _)| *t != BoundTerm::Transfer));
        assert_eq!(report.dominant_overhead(), Some(BoundTerm::Setup));
    }

    #[test]
    fn zero_overhead_design_has_no_penalty() {
        let s = scenario(0.0, 0.0, 0.0, 8.0, ThreadingDesign::Sync, AccelerationStrategy::OnChip);
        let report = diagnose(&s);
        assert_eq!(report.overhead_penalty(), 0.0);
        assert!(report.dominant_overhead().is_some()); // αC/A remains
        let s2 = scenario(0.0, 0.0, 0.0, 8.0, ThreadingDesign::AsyncSameThread, AccelerationStrategy::OnChip);
        assert!(diagnose(&s2).dominant_overhead().is_none());
    }

    #[test]
    fn terms_have_distinct_remedies_and_names() {
        use std::collections::HashSet;
        let remedies: HashSet<&str> = BoundTerm::ALL.iter().map(|t| t.remedy()).collect();
        assert_eq!(remedies.len(), BoundTerm::ALL.len());
        let names: HashSet<String> = BoundTerm::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names.len(), BoundTerm::ALL.len());
    }

    #[test]
    fn aes_ni_case_study_is_accelerator_time_bound() {
        // The paper's AES-NI design loses most of its residual gain to
        // αC/A (A = 6 on the critical path), not to offload overheads.
        let params = ModelParams::builder()
            .host_cycles(2.0e9)
            .kernel_fraction(0.165844)
            .offloads(298_951.0)
            .setup_cycles(10.0)
            .interface_cycles(3.0)
            .peak_speedup(6.0)
            .build()
            .unwrap();
        let s = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip);
        let report = diagnose(&s);
        assert_eq!(report.dominant_overhead(), Some(BoundTerm::AcceleratorTime));
        assert!(report.overhead_penalty() < 0.1);
    }
}
