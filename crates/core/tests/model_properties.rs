//! Property-based tests for the Accelerometer model invariants.
//!
//! These check the *shape* of the model over randomized parameter spaces:
//! monotonicity in every overhead, agreement with Amdahl's law in the
//! overhead-free limit, consistency between break-even analysis and the
//! per-offload profitability predicates, and distribution-law invariants
//! of the granularity CDF.

use accelerometer::units::{bytes, cycles_per_byte};
use accelerometer::{
    amdahl, estimate, latency_breakeven, offload_improves_throughput, throughput_breakeven,
    AccelerationStrategy, BreakEven, Complexity, DriverMode, GranularityCdf, KernelCost,
    ModelParams, OffloadContext, OffloadOverheads, Scenario, ThreadingDesign,
};
use proptest::prelude::*;

fn design_strategy() -> impl Strategy<Value = (ThreadingDesign, AccelerationStrategy)> {
    (
        prop::sample::select(ThreadingDesign::ALL.to_vec()),
        prop::sample::select(AccelerationStrategy::ALL.to_vec()),
    )
}

fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (
        1e8..1e10_f64,     // C
        0.001..0.9_f64,    // alpha
        1.0..1e6_f64,      // n
        0.0..1e4_f64,      // o0
        0.0..1e4_f64,      // L
        0.0..1e4_f64,      // Q
        0.0..2e4_f64,      // o1
        1.0..100.0_f64,    // A
    )
        .prop_map(|(c, alpha, n, o0, l, q, o1, a)| {
            ModelParams::builder()
                .host_cycles(c)
                .kernel_fraction(alpha)
                .offloads(n)
                .setup_cycles(o0)
                .interface_cycles(l)
                .queueing_cycles(q)
                .thread_switch_cycles(o1)
                .peak_speedup(a)
                .build()
                .expect("generated parameters are valid")
        })
}

fn rebuild_with(params: &ModelParams, f: impl FnOnce(OffloadOverheads) -> OffloadOverheads, a: Option<f64>) -> ModelParams {
    let ovh = f(params.overheads());
    ModelParams::builder()
        .host_cycles(params.host_cycles().get())
        .kernel_fraction(params.kernel_fraction())
        .offloads(params.offloads())
        .overheads(ovh)
        .peak_speedup(a.unwrap_or_else(|| params.peak_speedup()))
        .build()
        .unwrap()
}

proptest! {
    /// Raising any overhead never increases speedup or latency reduction.
    #[test]
    fn speedup_is_monotone_decreasing_in_overheads(
        params in params_strategy(),
        (design, strategy) in design_strategy(),
        bump in 1.0..1e5_f64,
        which in 0usize..4,
    ) {
        let driver = DriverMode::AwaitsAck;
        let base = estimate(&params, design, strategy, driver);
        let bumped = rebuild_with(&params, |mut o| {
            match which {
                0 => o.setup += accelerometer::Cycles::new(bump),
                1 => o.interface += accelerometer::Cycles::new(bump),
                2 => o.queueing += accelerometer::Cycles::new(bump),
                _ => o.thread_switch += accelerometer::Cycles::new(bump),
            }
            o
        }, None);
        let worse = estimate(&bumped, design, strategy, driver);
        prop_assert!(worse.throughput_speedup <= base.throughput_speedup + 1e-12);
        prop_assert!(worse.latency_reduction <= base.latency_reduction + 1e-12);
    }

    /// Raising the accelerator's peak speedup never hurts.
    #[test]
    fn speedup_is_monotone_increasing_in_a(
        params in params_strategy(),
        (design, strategy) in design_strategy(),
        factor in 1.0..10.0_f64,
    ) {
        let driver = DriverMode::AwaitsAck;
        let base = estimate(&params, design, strategy, driver);
        let faster = rebuild_with(&params, |o| o, Some(params.peak_speedup() * factor));
        let better = estimate(&faster, design, strategy, driver);
        prop_assert!(better.throughput_speedup >= base.throughput_speedup - 1e-12);
        prop_assert!(better.latency_reduction >= base.latency_reduction - 1e-12);
    }

    /// With zero overheads, the Sync design is exactly Amdahl's law, and
    /// A → ∞ recovers the ideal speedup 1/(1−α).
    #[test]
    fn sync_without_overheads_is_amdahl(
        c in 1e8..1e10_f64,
        alpha in 0.001..0.99_f64,
        n in 1.0..1e6_f64,
        a in 1.0..1000.0_f64,
    ) {
        let params = ModelParams::builder()
            .host_cycles(c)
            .kernel_fraction(alpha)
            .offloads(n)
            .peak_speedup(a)
            .build()
            .unwrap();
        let est = estimate(&params, ThreadingDesign::Sync, AccelerationStrategy::OnChip, DriverMode::Posted);
        prop_assert!((est.throughput_speedup - amdahl::speedup(alpha, a)).abs() < 1e-9);

        let ideal_params = rebuild_with(&params, |o| o, Some(f64::INFINITY));
        let ideal = estimate(&ideal_params, ThreadingDesign::Sync, AccelerationStrategy::OnChip, DriverMode::Posted);
        prop_assert!((ideal.throughput_speedup - amdahl::ideal_speedup(alpha)).abs() < 1e-9);
    }

    /// For Sync, latency reduction equals throughput speedup (eqn 1); for
    /// the async designs, latency reduction never exceeds the speedup
    /// except where both paths coincide.
    #[test]
    fn latency_vs_throughput_ordering(
        params in params_strategy(),
        strategy in prop::sample::select(AccelerationStrategy::ALL.to_vec()),
    ) {
        let sync = estimate(&params, ThreadingDesign::Sync, strategy, DriverMode::AwaitsAck);
        prop_assert!((sync.throughput_speedup - sync.latency_reduction).abs() < 1e-12);

        for design in [ThreadingDesign::AsyncSameThread, ThreadingDesign::AsyncNoResponse] {
            let est = estimate(&params, design, strategy, DriverMode::AwaitsAck);
            prop_assert!(
                est.latency_reduction <= est.throughput_speedup + 1e-12,
                "{design:?}/{strategy:?}: latency {} > speedup {}",
                est.latency_reduction,
                est.throughput_speedup,
            );
        }
    }

    /// Net speedup never exceeds the Amdahl bound for the same α and A:
    /// overheads only ever subtract.
    #[test]
    fn overheads_only_subtract_from_amdahl(
        params in params_strategy(),
        (design, strategy) in design_strategy(),
    ) {
        let est = estimate(&params, design, strategy, DriverMode::AwaitsAck);
        // The async designs remove αC/A from the host path, so the right
        // bound there is the ideal 1/(1-α); Sync is bounded by Amdahl.
        let bound = if design.accelerator_time_on_throughput_path() {
            amdahl::speedup(params.kernel_fraction(), params.peak_speedup())
        } else {
            amdahl::ideal_speedup(params.kernel_fraction())
        };
        prop_assert!(est.throughput_speedup <= bound + 1e-9);
    }

    /// The break-even threshold really is the profitability boundary:
    /// slightly above is lucrative, slightly below is not.
    #[test]
    fn breakeven_is_a_boundary(
        cb in 0.01..100.0_f64,
        o0 in 0.0..1e4_f64,
        l in 0.0..1e4_f64,
        o1 in 0.0..1e4_f64,
        a in 1.01..100.0_f64,
        (design, strategy) in design_strategy(),
    ) {
        let cost = KernelCost::linear(cycles_per_byte(cb));
        let ctx = OffloadContext::new(
            OffloadOverheads::new(o0, l, 0.0, o1),
            a,
            design,
            strategy,
        );
        match throughput_breakeven(&cost, &ctx) {
            BreakEven::AtLeast(g) if g.get() > 1e-6 => {
                prop_assert!(offload_improves_throughput(&cost, &ctx, g * 1.001));
                prop_assert!(!offload_improves_throughput(&cost, &ctx, g * 0.999));
            }
            BreakEven::AtLeast(_) | BreakEven::Always => {
                prop_assert!(offload_improves_throughput(&cost, &ctx, bytes(1.0)));
            }
            BreakEven::Never => {
                prop_assert!(!offload_improves_throughput(&cost, &ctx, bytes(1e12)));
            }
        }
    }

    /// Latency break-even is never easier than the throughput break-even
    /// for designs whose latency path carries at least the throughput
    /// path's overheads (Sync: identical; async same-thread: extra αC/A).
    #[test]
    fn latency_breakeven_at_least_throughput_for_sync(
        cb in 0.01..100.0_f64,
        o0 in 0.0..1e4_f64,
        l in 0.0..1e4_f64,
        a in 1.01..100.0_f64,
    ) {
        let cost = KernelCost::linear(cycles_per_byte(cb));
        let ctx = OffloadContext::new(
            OffloadOverheads::new(o0, l, 0.0, 0.0),
            a,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let tp = throughput_breakeven(&cost, &ctx);
        let lat = latency_breakeven(&cost, &ctx);
        prop_assert_eq!(tp, lat);

        let ctx_async = OffloadContext::new(
            OffloadOverheads::new(o0, l, 0.0, 0.0),
            a,
            ThreadingDesign::AsyncSameThread,
            AccelerationStrategy::OffChip,
        );
        let tp_a = throughput_breakeven(&cost, &ctx_async).threshold().unwrap();
        let lat_a = latency_breakeven(&cost, &ctx_async).threshold().unwrap();
        prop_assert!(lat_a >= tp_a);
    }

    /// CDF invariants: F is monotone, quantile is a right inverse on the
    /// support, and the lucrative fraction is a probability.
    #[test]
    fn cdf_laws(
        raw in prop::collection::vec((1.0..1e6_f64, 1u64..1000), 1..20),
        probe in 0.0..1.0_f64,
    ) {
        let mut bounds: Vec<f64> = raw.iter().map(|(g, _)| *g).collect();
        bounds.sort_by(|x, y| x.partial_cmp(y).unwrap());
        bounds.dedup();
        let counts: Vec<u64> = raw.iter().take(bounds.len()).map(|(_, c)| *c).collect();
        let cdf = GranularityCdf::from_bucket_counts(&bounds, &counts).unwrap();

        // Monotonicity over a sweep of the support.
        let max = cdf.max_bytes().get();
        let mut prev = 0.0;
        for i in 0..=20 {
            let g = bytes(max * i as f64 / 20.0);
            let f = cdf.fraction_at_or_below(g);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }

        // Quantile is a right inverse where F is strictly increasing.
        let g = cdf.quantile(probe);
        let back = cdf.fraction_at_or_below(g);
        prop_assert!(back >= probe - 1e-9);

        // Lucrative fractions are probabilities and shrink as the
        // threshold rises.
        let f_lo = cdf.lucrative_fraction(BreakEven::AtLeast(bytes(max * 0.1)));
        let f_hi = cdf.lucrative_fraction(BreakEven::AtLeast(bytes(max * 0.9)));
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_hi <= f_lo + 1e-12);

        // Partial mean above zero is the full mean.
        let mean = cdf.mean_bytes();
        let partial = cdf.partial_mean_above(bytes(0.0));
        prop_assert!((mean.get() - partial.get()).abs() < mean.get().max(1.0) * 1e-9);
    }

    /// Scenario facade agrees with the free function for every design and
    /// strategy.
    #[test]
    fn scenario_matches_free_function(
        params in params_strategy(),
        (design, strategy) in design_strategy(),
    ) {
        let scenario = Scenario::new(params, design, strategy);
        let direct = estimate(&params, design, strategy, scenario.driver);
        prop_assert_eq!(scenario.estimate(), direct);
    }

    /// Super-linear kernels always break even at smaller granularities
    /// than linear ones with the same Cb (and sub-linear at larger).
    #[test]
    fn complexity_orders_breakeven(
        cb in 0.1..10.0_f64,
        l in 100.0..1e5_f64,
        a in 1.5..50.0_f64,
        beta_super in 1.05..2.0_f64,
        beta_sub in 0.5..0.95_f64,
    ) {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, l, 0.0, 0.0),
            a,
            ThreadingDesign::Sync,
            AccelerationStrategy::OffChip,
        );
        let mk = |beta: f64| KernelCost {
            cycles_per_byte: cycles_per_byte(cb),
            complexity: Complexity::new(beta).unwrap(),
        };
        let g_lin = throughput_breakeven(&mk(1.0), &ctx).threshold().unwrap();
        let g_sup = throughput_breakeven(&mk(beta_super), &ctx).threshold().unwrap();
        let g_sub = throughput_breakeven(&mk(beta_sub), &ctx).threshold().unwrap();
        // Only a meaningful ordering when the linear break-even exceeds
        // one byte (otherwise powers flip around g = 1).
        if g_lin.get() > 1.0 {
            prop_assert!(g_sup <= g_lin);
            prop_assert!(g_sub >= g_lin);
        }
    }
}

