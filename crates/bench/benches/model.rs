//! Criterion benchmarks of the analytical model itself: single
//! evaluations, end-to-end projections (break-even + CDF selection +
//! estimate), parameter sweeps, and config parsing. The model's pitch is
//! that it is cheap enough to run at design time for every candidate
//! accelerator; these benchmarks quantify "cheap".

use accelerometer::units::cycles_per_byte;
use accelerometer::{
    estimate, project, sweep, throughput_breakeven, AccelerationStrategy, ConfigFile, DriverMode,
    KernelCost, ModelParams, OffloadContext, OffloadOverheads, OffloadPolicy, Scenario,
    ThreadingDesign,
};
use accelerometer_fleet::params::{aes_ni_cache1, compression_feed1};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_estimate(c: &mut Criterion) {
    let params = aes_ni_cache1().scenario.params;
    c.bench_function("model/estimate_sync_on_chip", |b| {
        b.iter(|| {
            estimate(
                black_box(&params),
                ThreadingDesign::Sync,
                AccelerationStrategy::OnChip,
                DriverMode::Posted,
            )
        })
    });
    c.bench_function("model/estimate_all_designs", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for design in ThreadingDesign::ALL {
                for strategy in AccelerationStrategy::ALL {
                    total += estimate(
                        black_box(&params),
                        design,
                        strategy,
                        DriverMode::AwaitsAck,
                    )
                    .throughput_speedup;
                }
            }
            total
        })
    });
}

fn bench_projection(c: &mut Criterion) {
    let rec = compression_feed1();
    let cfg = &rec.configs[1]; // off-chip Sync with CDF selection
    c.bench_function("model/project_with_cdf_selection", |b| {
        b.iter(|| {
            project(
                black_box(&rec.profile),
                black_box(&cfg.accelerator),
                cfg.design,
                OffloadPolicy::SelectiveLucrative,
            )
            .expect("valid parameters")
        })
    });
    c.bench_function("model/breakeven", |b| {
        let ctx = OffloadContext::new(
            OffloadOverheads::new(0.0, 2_300.0, 0.0, 5_750.0),
            27.0,
            ThreadingDesign::SyncOs,
            AccelerationStrategy::OffChip,
        );
        let cost = KernelCost::linear(cycles_per_byte(5.62));
        b.iter(|| throughput_breakeven(black_box(&cost), black_box(&ctx)))
    });
}

fn bench_sweep(c: &mut Criterion) {
    let scenario = aes_ni_cache1().scenario;
    let values = sweep::log_space(1.0, 1_000.0, 100);
    c.bench_function("model/sweep_peak_speedup_100_points", |b| {
        b.iter(|| sweep::sweep(black_box(&scenario), sweep::SweepAxis::PeakSpeedup, &values))
    });
    let scenarios: Vec<Scenario> = (0..256)
        .map(|i| {
            let params = ModelParams::builder()
                .host_cycles(2.0e9)
                .kernel_fraction(0.1 + f64::from(i) * 0.003)
                .offloads(10_000.0)
                .interface_cycles(f64::from(i))
                .peak_speedup(8.0)
                .build()
                .expect("valid");
            Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OffChip)
        })
        .collect();
    c.bench_function("model/estimate_batch_256_parallel", |b| {
        b.iter(|| sweep::estimate_batch(black_box(&scenarios)))
    });
}

fn bench_config(c: &mut Criterion) {
    let cfg = ConfigFile {
        scenarios: (0..16)
            .map(|i| {
                accelerometer::ScenarioConfig::from_scenario(
                    format!("scenario-{i}"),
                    &aes_ni_cache1().scenario,
                )
            })
            .collect(),
    };
    let json = cfg.to_json().expect("serializes");
    c.bench_function("model/config_parse_16_scenarios", |b| {
        b.iter(|| ConfigFile::from_json(black_box(&json)).expect("parses"))
    });
}

criterion_group!(benches, bench_estimate, bench_projection, bench_sweep, bench_config);
criterion_main!(benches);
