//! Kernel micro-benchmarks: the §4 parameter-derivation methodology run
//! on this repository's own kernels. Each benchmark reports throughput,
//! from which `Cb = clock / (bytes per second)` follows; comparing two
//! implementations of the same kernel yields `A`.
//!
//! Granularities mirror the paper's CDFs: encryption at 64 B–4 KiB
//! (Fig. 15), compression at 256 B–32 KiB (Fig. 19), copies at
//! 64 B–4 KiB (Fig. 21).

use accelerometer_kernels::aes::Aes128;
use accelerometer_kernels::mlp::{Mlp, MlpScratch};
use accelerometer_kernels::{hash, lz, SizeClassAllocator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn data(len: usize) -> Vec<u8> {
    // Mildly compressible byte stream (structured like an RPC payload).
    (0..len)
        .map(|i| match i % 16 {
            0..=7 => b'a' + (i % 8) as u8,
            8..=11 => (i / 16 % 251) as u8,
            _ => 0,
        })
        .collect()
}

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/aes128_ctr");
    let cipher = Aes128::new(&[7u8; 16]);
    for &size in &[64usize, 256, 1024, 4096] {
        let mut buf = data(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| cipher.ctr_apply(black_box(&[3u8; 16]), black_box(&mut buf)))
        });
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/lz_compress");
    for &size in &[256usize, 4096, 32_768] {
        let input = data(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| lz::compress(black_box(&input)))
        });
    }
    group.finish();

    // Scratch-reuse path: one compressor context reused across calls,
    // the way a service's request loop would hold one per connection.
    let mut group = c.benchmark_group("kernels/lz_compress_scratch");
    let size = 4096usize;
    let input = data(size);
    let mut scratch = lz::LzScratch::new();
    let mut out = Vec::new();
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
        b.iter(|| {
            lz::compress_into(black_box(&input), &mut scratch, &mut out);
            black_box(out.as_slice());
        })
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/lz_decompress");
    for &size in &[4096usize, 32_768] {
        let compressed = lz::compress(&data(size));
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| lz::decompress(black_box(&compressed)).expect("valid stream"))
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/hashing");
    let input = data(4096);
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha256_4k", |b| b.iter(|| hash::sha256(black_box(&input))));
    group.bench_function("fnv1a_4k", |b| b.iter(|| hash::fnv1a_64(black_box(&input))));
    group.finish();

    // Large-input hashing at 64 KiB and 1 MiB: the per-byte compression
    // cost dominates, so these are the purest view of the SHA-256
    // kernel's Cb (and the sizes where a copy-and-pad implementation
    // pays an extra full-message memcpy per call).
    let mut group = c.benchmark_group("kernels/hashing");
    let large = data(65_536);
    group.throughput(Throughput::Bytes(65_536));
    group.bench_function("sha256_64k", |b| b.iter(|| hash::sha256(black_box(&large))));
    group.finish();
    let mut group = c.benchmark_group("kernels/hashing");
    let huge = data(1 << 20);
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("sha256_1m", |b| b.iter(|| hash::sha256(black_box(&huge))));
    group.finish();
}

fn bench_mlp(c: &mut Criterion) {
    // A Feed1-shaped relevance model: 512-feature vectors.
    let mlp = Mlp::seeded_ranker(&[512, 256, 64, 1], 42);
    let features: Vec<f32> = (0..512).map(|i| i as f32 / 512.0).collect();
    let mut group = c.benchmark_group("kernels/mlp_inference");
    group.throughput(Throughput::Elements(mlp.macs() as u64));
    group.bench_function("ranker_512x256x64x1", |b| {
        b.iter(|| mlp.infer(black_box(&features)).expect("valid input"))
    });
    group.finish();

    // Batched inference at B=16: the granularity Ads1 batches offloads
    // at (§4, case study 3). One scratch reused across calls, so each
    // layer's weight matrix is streamed once per batch, not once per
    // input.
    let batch: Vec<Vec<f32>> = (0..16)
        .map(|i| (0..512).map(|j| (i * 512 + j) as f32 / 8192.0).collect())
        .collect();
    let mut group = c.benchmark_group("kernels/mlp_inference");
    group.throughput(Throughput::Elements(16 * mlp.macs() as u64));
    let mut scratch = MlpScratch::new();
    let mut out = Vec::new();
    group.bench_function("batch16_512x256x64x1", |b| {
        b.iter(|| {
            mlp.forward_batch(black_box(&batch), &mut scratch, &mut out)
                .expect("valid input");
            black_box(out.as_slice());
        })
    });
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    // The §2.3.1 free-path comparison: unsized free pays the size-class
    // lookup, sized free (C++14 sized delete) does not.
    let mut group = c.benchmark_group("kernels/allocator");
    group.bench_function("alloc_free_unsized_128B", |b| {
        let mut alloc = SizeClassAllocator::new();
        b.iter(|| {
            let h = alloc.alloc(black_box(128)).expect("in range");
            alloc.free(h);
        })
    });
    group.bench_function("alloc_free_sized_128B", |b| {
        let mut alloc = SizeClassAllocator::new();
        b.iter(|| {
            let h = alloc.alloc(black_box(128)).expect("in range");
            alloc.free_with_size(h, 128);
        })
    });
    group.finish();
}

fn bench_kvstore(c: &mut Criterion) {
    // The first non-crypto consumer of the dispatch layer: a cache
    // microservice's hot path is the shard probe, which the SSE2 path
    // scans 16 tags at a time. Populated well past one SIMD lane-width
    // per shard so the probe loop actually iterates.
    let mut store = accelerometer_kernels::kvstore::KvStore::new(8);
    let keys: Vec<Vec<u8>> = (0..1024)
        .map(|i| format!("object:{i:05}").into_bytes())
        .collect();
    for (i, key) in keys.iter().enumerate() {
        store.set(key, data(64 + i % 128), 3_600, 0);
    }
    let mut group = c.benchmark_group("kernels/kvstore");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("get_hit_1k", |b| {
        b.iter(|| {
            for key in &keys {
                black_box(store.get(black_box(key), 1));
            }
        })
    });
    group.bench_function("get_miss_1k", |b| {
        b.iter(|| {
            for i in 0..keys.len() {
                let key = format!("absent:{i:05}");
                black_box(store.get(black_box(key.as_bytes()), 1));
            }
        })
    });
    group.bench_function("set_overwrite_1k", |b| {
        b.iter(|| {
            for key in &keys {
                store.set(black_box(key), data(64), 3_600, 1);
            }
        })
    });
    group.finish();
}

fn bench_memcpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/memcpy");
    for &size in &[64usize, 512, 4096] {
        let src = data(size);
        let mut dst = vec![0u8; size];
        let mut counter = accelerometer_kernels::OpCounter::new();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                accelerometer_kernels::memops::copy(
                    &mut counter,
                    "bench",
                    black_box(&mut dst),
                    black_box(&src),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_compression,
    bench_hashing,
    bench_mlp,
    bench_allocator,
    bench_kvstore,
    bench_memcpy
);
criterion_main!(benches);
