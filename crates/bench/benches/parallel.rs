//! Benchmarks for this PR's two optimization layers:
//!
//! * the inverse-CDF granularity sampler (binary search) against the
//!   linear-scan `GranularityCdf::quantile` it replaces on the
//!   simulator's hot path, at small and production-sized CDFs;
//! * the parallel experiment engine: an identical batch of simulations
//!   pushed through `ExecPool` at widths 1, 2, and 4 (on a single-core
//!   host the widths should tie to within scheduler noise — the point
//!   is that parallelism is free, not that it always helps).
//!
//! `BENCH_parallel.json` tracks the BENCHJSON lines this prints.

use accelerometer::units::cycles_per_byte;
use accelerometer::{
    AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign,
};
use accelerometer_sim::parallel::{run_batch, ExecPool};
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{run_sharded, DeviceKind, OffloadConfig, ShardPlan, SimConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A CDF with `n` breakpoints (evenly spaced fractions, geometric byte
/// growth) — production traces bucket granularities finely, which is
/// where the linear scan hurts.
fn cdf_with_points(n: usize) -> GranularityCdf {
    let points: Vec<(f64, f64)> = (1..=n)
        .map(|i| {
            let f = i as f64 / n as f64;
            (16.0 * 1.05_f64.powi(i as i32), f)
        })
        .collect();
    GranularityCdf::from_points(points).expect("valid CDF")
}

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/sampler");
    const DRAWS: usize = 10_000;
    group.throughput(Throughput::Elements(DRAWS as u64));
    for &size in &[4usize, 64, 256] {
        let cdf = cdf_with_points(size);
        let sampler = cdf.sampler();
        let ps: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..DRAWS).map(|_| rng.gen_range(0.0..1.0)).collect()
        };
        group.bench_with_input(
            BenchmarkId::new("linear_scan", size),
            &ps,
            |b, ps| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &p in ps {
                        acc += cdf.quantile(black_box(p)).get();
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("binary_search", size),
            &ps,
            |b, ps| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &p in ps {
                        acc += sampler.quantile(black_box(p)).get();
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn batch() -> Vec<SimConfig> {
    (0..8u64)
        .map(|i| SimConfig {
            cores: 2,
            threads: 4,
            context_switch_cycles: 300.0,
            horizon: 4e6,
            seed: 100 + i,
            workload: WorkloadSpec {
                non_kernel_cycles: 5_000.0,
                kernels_per_request: 1,
                granularity: cdf_with_points(64),
                cycles_per_byte: cycles_per_byte(2.0),
            },
            offload: None,
            fault: Default::default(),
            recovery: Default::default(),
        })
        .collect()
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/pool");
    let configs = batch();
    group.throughput(Throughput::Elements(configs.len() as u64));
    for &jobs in &[1usize, 2, 4] {
        let pool = ExecPool::new(jobs);
        group.bench_with_input(
            BenchmarkId::new("run_batch_8x4M_cycles", jobs),
            &configs,
            |b, configs| b.iter(|| run_batch(&pool, black_box(configs))),
        );
    }
    group.finish();
}

/// One large sharded simulation: a 4-core / 8-thread host over a shared
/// 4-server device, decomposing into 4 shards. On a single-core runner
/// the widths tie (the determinism suite is what proves they agree
/// byte-for-byte); on multi-core hosts the wall-clock win appears at
/// width >= 2 for free.
fn sharded_config() -> SimConfig {
    SimConfig {
        cores: 4,
        threads: 8,
        context_switch_cycles: 300.0,
        horizon: 8e6,
        seed: 20_260_807,
        workload: WorkloadSpec {
            non_kernel_cycles: 5_000.0,
            kernels_per_request: 1,
            granularity: cdf_with_points(64),
            cycles_per_byte: cycles_per_byte(2.0),
        },
        offload: Some(OffloadConfig {
            design: ThreadingDesign::AsyncSameThread,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::Posted,
            device: DeviceKind::Shared { servers: 4 },
            peak_speedup: 4.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }),
        fault: Default::default(),
        recovery: Default::default(),
    }
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/shard");
    let cfg = sharded_config();
    let plan = ShardPlan::for_config(&cfg);
    assert_eq!(plan.shards, 4, "bench config must decompose 4-ways");
    group.throughput(Throughput::Elements(plan.shards as u64));
    for &width in &[1usize, 2, 4] {
        let pool = ExecPool::new(width);
        group.bench_with_input(
            BenchmarkId::new("run_sharded_4x8M_cycles", width),
            &cfg,
            |b, cfg| b.iter(|| run_sharded(&pool, black_box(cfg)).expect("valid config")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampler, bench_pool, bench_sharded);
criterion_main!(benches);
