//! End-to-end benchmarks of the composed substrates: the RPC
//! orchestration pipeline (the per-request overhead path the paper's
//! characterization measures) and the profiler's aggregation throughput.

use accelerometer_fleet::{profile, ServiceId};
use accelerometer_kernels::kvstore::KvStore;
use accelerometer_kernels::pipeline::RpcPipeline;
use accelerometer_kernels::KvMessage;
use accelerometer_profiler::{analyze, TraceGenerator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| if i % 3 == 0 { (i % 251) as u8 } else { b'v' })
        .collect()
}

fn bench_rpc_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/seal_open");
    for &size in &[256usize, 2_048, 16_384] {
        let message = KvMessage::Set {
            key: b"user:42".to_vec(),
            value: payload(size),
            ttl_seconds: 120,
        };
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let key = [7u8; 16];
            let mut sender = RpcPipeline::new(&key);
            let mut receiver = RpcPipeline::new(&key);
            b.iter(|| {
                let frame = sender.seal(black_box(&message));
                receiver.open(black_box(&frame)).expect("round trip")
            })
        });
    }
    group.finish();
}

fn bench_cache_request_loop(c: &mut Criterion) {
    // The living-Cache1 loop: unwrap → serve → wrap.
    let key = [9u8; 16];
    let mut client = RpcPipeline::new(&key);
    let frames: Vec<Vec<u8>> = (0..64)
        .map(|i| {
            client.seal(&if i % 3 == 0 {
                KvMessage::Set {
                    key: format!("k:{}", i % 16).into_bytes(),
                    value: payload(1_024),
                    ttl_seconds: 60,
                }
            } else {
                KvMessage::Get {
                    key: format!("k:{}", i % 16).into_bytes(),
                }
            })
        })
        .collect();
    let mut group = c.benchmark_group("pipeline/cache_request_loop");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("unwrap_serve_wrap_64_requests", |b| {
        let mut rx = RpcPipeline::new(&key);
        let mut tx = RpcPipeline::new(&key);
        let mut store = KvStore::new(16);
        let mut now = 0u64;
        b.iter(|| {
            for frame in &frames {
                let request = rx.open(black_box(frame)).expect("valid frame");
                let response = store.serve(&request, now);
                black_box(tx.seal(&response));
                now += 1;
            }
        })
    });
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let mut generator = TraceGenerator::new(profile(ServiceId::Cache1), 42);
    let traces = generator.generate(20_000);
    let registry = generator.registry().clone();
    let mut group = c.benchmark_group("profiler");
    group.throughput(Throughput::Elements(traces.len() as u64));
    group.bench_function("analyze_20k_traces", |b| {
        b.iter(|| analyze(black_box(&traces), &registry))
    });
    group.bench_function("generate_5k_traces", |b| {
        let mut generator = TraceGenerator::new(profile(ServiceId::Web), 7);
        b.iter(|| generator.generate(5_000))
    });
    group.finish();
}

criterion_group!(benches, bench_rpc_pipeline, bench_cache_request_loop, bench_profiler);
criterion_main!(benches);
