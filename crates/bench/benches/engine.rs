//! Engine hot-loop benchmarks: events/sec through `Simulator::run` on a
//! representative load-sweep configuration, for the unaccelerated
//! baseline and one offloaded variant per threading design
//! (Sync / Sync-OS / Async), plus the end-to-end load sweep those runs
//! compose into and the percentile-summary cost at realistic sample
//! counts.
//!
//! `BENCH_engine.json` tracks the BENCHJSON lines this prints, with
//! before/after numbers for the packed event queue, the request slab,
//! and the total-order-key percentile path.

use accelerometer::units::cycles_per_byte;
use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
use accelerometer_sim::parallel::ExecPool;
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{
    concurrency_sweep_with, set_trace_reuse, DeviceKind, FrozenTrace, LatencyStats,
    OffloadConfig, SimConfig, Simulator,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The load-sweep base configuration (mirrors the determinism suite's
/// sweep base): 2 cores, offload through a shared 2-server device.
fn sweep_workload() -> WorkloadSpec {
    WorkloadSpec {
        non_kernel_cycles: 4_000.0,
        kernels_per_request: 1,
        granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)])
            .expect("valid CDF"),
        cycles_per_byte: cycles_per_byte(2.0),
    }
}

fn base_config() -> SimConfig {
    SimConfig {
        cores: 2,
        threads: 4,
        context_switch_cycles: 400.0,
        horizon: 2e7,
        seed: 20_260_806,
        workload: sweep_workload(),
        offload: None,
        fault: Default::default(),
        recovery: Default::default(),
    }
}

fn offload(design: ThreadingDesign) -> OffloadConfig {
    OffloadConfig {
        design,
        strategy: AccelerationStrategy::OffChip,
        driver: DriverMode::Posted,
        device: DeviceKind::Shared { servers: 2 },
        peak_speedup: 4.0,
        interface_latency: 8_000.0,
        setup_cycles: 50.0,
        dispatch_pollution: 0.0,
        min_offload_bytes: None,
    }
}

/// The four variants a load sweep exercises: the host-only baseline and
/// one configuration per threading design family.
fn variants() -> Vec<(&'static str, SimConfig)> {
    let mut out = vec![("baseline", base_config())];
    for (name, design) in [
        ("sync", ThreadingDesign::Sync),
        ("sync_os", ThreadingDesign::SyncOs),
        ("async", ThreadingDesign::AsyncSameThread),
    ] {
        let mut cfg = base_config();
        if design == ThreadingDesign::SyncOs {
            cfg.threads = 8;
        }
        cfg.offload = Some(offload(design));
        out.push((name, cfg));
    }
    out
}

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/run");
    for (name, cfg) in variants() {
        let (_, stats) = Simulator::new(cfg.clone()).run_instrumented();
        group.throughput(Throughput::Elements(stats.events_processed));
        group.bench_with_input(BenchmarkId::new(name, "20M_cycles"), &cfg, |b, cfg| {
            b.iter(|| Simulator::new(black_box(cfg.clone())).run())
        });
    }
    group.finish();
}

/// Tie stress: an on-chip Sync offload issues zero-latency device
/// completions that tie with host-slice events to the bit, so the event
/// loop spends its time in multi-event timestamp runs — the worst case
/// for the run-accounting path.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/batch");
    let mut cfg = base_config();
    cfg.offload = Some(OffloadConfig::on_chip_sync(4.0));
    let (_, stats) = Simulator::new(cfg.clone()).run_instrumented();
    assert!(
        stats.multi_event_batches > 0,
        "config must exercise multi-event runs"
    );
    group.throughput(Throughput::Elements(stats.events_processed));
    group.bench_with_input(
        BenchmarkId::new("on_chip_sync", "20M_cycles"),
        &cfg,
        |b, cfg| b.iter(|| Simulator::new(black_box(cfg.clone())).run()),
    );
    group.finish();
}

fn bench_load_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/load_sweep");
    let mut cfg = base_config();
    cfg.offload = Some(offload(ThreadingDesign::SyncOs));
    cfg.horizon = 1e7;
    let counts = [2usize, 4, 8, 16];
    group.throughput(Throughput::Elements(counts.len() as u64));
    let pool = ExecPool::new(1);
    group.bench_function("concurrency_2_to_16", |b| {
        b.iter(|| concurrency_sweep_with(&pool, black_box(&cfg), &counts))
    });
    group.finish();
}

/// Cross-point trace reuse at sweep scale: an 8-point concurrency sweep
/// with frozen-trace reuse off (every grid point redraws the identical
/// workload stream) versus on (one draw per sweep, points copy from the
/// shared trace). The `trace/draw_prefix` row measures the one-time
/// sampling cost itself, so `(off − on) / draw_prefix` reads as "how
/// many per-point redraws reuse eliminated".
fn bench_sweep_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/sweep8");
    let mut cfg = base_config();
    cfg.offload = Some(offload(ThreadingDesign::SyncOs));
    cfg.horizon = 5e6;
    let counts = [2usize, 3, 4, 6, 8, 12, 16, 24];
    group.throughput(Throughput::Elements(counts.len() as u64));
    let pool = ExecPool::new(1);
    set_trace_reuse(false);
    group.bench_function("reuse_off", |b| {
        b.iter(|| concurrency_sweep_with(&pool, black_box(&cfg), &counts))
    });
    set_trace_reuse(true);
    group.bench_function("reuse_on", |b| {
        b.iter(|| concurrency_sweep_with(&pool, black_box(&cfg), &counts))
    });
    group.finish();

    let mut group = c.benchmark_group("trace");
    let mut probe = cfg.clone();
    probe.threads = 24;
    let requests = FrozenTrace::for_config(&probe).len() as u64;
    group.throughput(Throughput::Elements(requests));
    group.bench_function("draw_prefix", |b| {
        b.iter(|| FrozenTrace::for_config(black_box(&probe)))
    });
    group.finish();
}

fn bench_percentiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/percentiles");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let samples: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..n).map(|_| rng.gen_range(1e3..1e6)).collect()
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("from_samples", n),
            &samples,
            |b, samples| b.iter(|| LatencyStats::from_samples(black_box(samples))),
        );
        group.bench_with_input(
            BenchmarkId::new("from_samples_owned", n),
            &samples,
            |b, samples| {
                b.iter(|| LatencyStats::from_samples_owned(black_box(samples.clone())))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_events,
    bench_batch,
    bench_load_sweep,
    bench_sweep_reuse,
    bench_percentiles
);
criterion_main!(benches);
