//! Simulator benchmarks: how fast the discrete-event substrate chews
//! through simulated cycles, and the cost of a full Table 6 A/B
//! validation — the reproduction's equivalent of "how long does the
//! experiment take".

use accelerometer::units::cycles_per_byte;
use accelerometer::GranularityCdf;
use accelerometer_fleet::params::aes_ni_cache1;
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{simulate, OffloadConfig, SimConfig, Simulator};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn control() -> SimConfig {
    SimConfig {
        cores: 4,
        threads: 8,
        context_switch_cycles: 500.0,
        horizon: 2e7,
        seed: 9,
        workload: WorkloadSpec {
            non_kernel_cycles: 5_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.5), (4_096.0, 1.0)])
                .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(2.0),
        },
        offload: None,
        fault: Default::default(),
        recovery: Default::default(),
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/engine");
    group.sample_size(20);
    group.throughput(Throughput::Elements(2e7 as u64)); // simulated cycles
    group.bench_function("baseline_20M_cycles", |b| {
        b.iter(|| Simulator::new(black_box(control())).run())
    });
    group.bench_function("sync_os_offload_20M_cycles", |b| {
        let mut cfg = control();
        cfg.offload = Some(OffloadConfig {
            design: accelerometer::ThreadingDesign::SyncOs,
            strategy: accelerometer::AccelerationStrategy::OffChip,
            driver: accelerometer::DriverMode::AwaitsAck,
            device: accelerometer_sim::DeviceKind::Shared { servers: 2 },
            peak_speedup: 8.0,
            interface_latency: 2_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: Some(512.0),
        });
        b.iter(|| Simulator::new(black_box(cfg.clone())).run())
    });
    group.finish();
}

fn bench_case_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/case_study");
    group.sample_size(10);
    let study = aes_ni_cache1();
    group.bench_function("aes_ni_ab_validation", |b| {
        b.iter(|| simulate(black_box(&study), 42))
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_case_study);
criterion_main!(benches);
