//! Ablation studies of the modeling choices DESIGN.md calls out.
//!
//! Three questions the paper leaves implicit, answered with the
//! simulator as ground truth:
//!
//! 1. **α-weighting** — when only granularities above break-even are
//!    offloaded, the paper scales `α` by the *count* fraction of
//!    lucrative offloads (64.2% for Feed1's off-chip Sync compression).
//!    But kernel cycles are proportional to *bytes*, and large offloads
//!    carry most bytes; byte-weighted scaling attributes far more cycles
//!    to the lucrative subset. Which accounting matches an execution
//!    that actually offloads per-invocation?
//! 2. **queueing** — the §5 projections assume `Q = 0`. How much error
//!    does that introduce as a shared off-chip device saturates, and
//!    does the M/M/1 estimator recover it?
//! 3. **pool depth** — Sync-OS assumes "the host continues to perform
//!    useful work" while a thread blocks. How deep must the thread pool
//!    be before that assumption holds?

use accelerometer::units::cycles_per_byte;
use accelerometer::{
    estimate, throughput_breakeven, DriverMode, ModelParams, OffloadContext, ThreadingDesign,
};
use accelerometer_fleet::params::{all_case_studies, compression_feed1};
use accelerometer_sim::workload::{workload_for_params, WorkloadSpec};
use accelerometer_sim::{run_ab, DeviceKind, ExecPool, OffloadConfig, SimConfig};
use serde::{Deserialize, Serialize};

use crate::render::table;

/// Ablation 1 result: the two α-scaling rules against simulated truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaWeightingAblation {
    /// Break-even granularity applied (bytes).
    pub breakeven_bytes: f64,
    /// Count fraction of lucrative offloads (the paper's 64.2%).
    pub count_fraction: f64,
    /// Byte fraction carried by lucrative offloads.
    pub byte_fraction: f64,
    /// Model speedup % with count-weighted α (the paper's accounting).
    pub count_weighted_percent: f64,
    /// Model speedup % with byte-weighted α.
    pub byte_weighted_percent: f64,
    /// Simulated speedup % with true per-invocation selective offload.
    pub simulated_percent: f64,
}

/// Runs the α-weighting ablation on Feed1's off-chip Sync compression.
#[must_use]
pub fn alpha_weighting(seed: u64) -> AlphaWeightingAblation {
    let rec = compression_feed1();
    let profile = &rec.profile;
    let accel = &rec.configs[1].accelerator; // off-chip, A = 27, L = 2300
    let ctx = OffloadContext::new(
        accel.overheads,
        accel.peak_speedup,
        ThreadingDesign::Sync,
        accel.strategy,
    );
    let breakeven = throughput_breakeven(&profile.cost, &ctx)
        .threshold()
        .expect("off-chip Sync compression has a finite break-even");

    let count_fraction = profile.granularity.fraction_above(breakeven);
    let byte_fraction = profile.granularity.byte_weighted_fraction_above(breakeven);
    let n_lucrative = profile.total_offloads * count_fraction;

    let model_percent = |alpha_eff: f64| {
        let params = ModelParams::builder()
            .host_cycles(profile.total_cycles.get())
            .kernel_fraction(alpha_eff)
            .offloads(n_lucrative)
            .overheads(accel.overheads)
            .peak_speedup(accel.peak_speedup)
            .build()
            .expect("valid parameters");
        estimate(&params, ThreadingDesign::Sync, accel.strategy, DriverMode::AwaitsAck)
            .throughput_gain_percent()
    };
    let count_weighted_percent = model_percent(profile.kernel_fraction * count_fraction);
    let byte_weighted_percent = model_percent(profile.kernel_fraction * byte_fraction);

    // Ground truth: execute the selective offload per invocation. Use the
    // workload realizing the Table 7 aggregates and ample device servers
    // so queueing (which neither model variant includes) stays ~0.
    let control = SimConfig {
        cores: 4,
        threads: 4,
        context_switch_cycles: 0.0,
        horizon: 6e8,
        seed,
        workload: workload_for_params(
            profile.total_cycles.get(),
            profile.kernel_fraction,
            profile.total_offloads,
            profile.granularity.clone(),
        ),
        offload: None,
        fault: Default::default(),
        recovery: Default::default(),
    };
    let offload = OffloadConfig {
        design: ThreadingDesign::Sync,
        strategy: accel.strategy,
        driver: DriverMode::AwaitsAck,
        device: DeviceKind::Shared { servers: 8 },
        peak_speedup: accel.peak_speedup,
        interface_latency: accel.overheads.interface.get(),
        setup_cycles: accel.overheads.setup.get(),
        dispatch_pollution: 0.0,
        min_offload_bytes: Some(breakeven.get()),
    };
    let simulated_percent = run_ab(&control, offload).speedup_percent();

    AlphaWeightingAblation {
        breakeven_bytes: breakeven.get(),
        count_fraction,
        byte_fraction,
        count_weighted_percent,
        byte_weighted_percent,
        simulated_percent,
    }
}

/// Ablation 2 result: one row per device speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingAblationRow {
    /// The accelerator's peak speedup (slower device = higher load).
    pub peak_speedup: f64,
    /// Device utilization observed in simulation.
    pub device_utilization: f64,
    /// Emergent mean queue delay in the simulator (cycles).
    pub simulated_queue_delay: f64,
    /// Model speedup % with Q = 0 (the §5 assumption).
    pub model_q0_percent: f64,
    /// Model speedup % with the *measured* mean Q fed back in — the
    /// workflow eqn (1) supports ("Q enables projecting speedup based on
    /// accelerator load").
    pub model_measured_q_percent: f64,
    /// Simulated speedup %.
    pub simulated_percent: f64,
}

/// Runs the queueing ablation: a single-server off-chip device shared by
/// four cores, swept across device speeds.
#[must_use]
pub fn queueing_sensitivity(seed: u64) -> Vec<QueueingAblationRow> {
    queueing_sensitivity_with(&ExecPool::default(), seed)
}

/// [`queueing_sensitivity`] with an explicit worker pool: each device
/// speed is an independent seeded A/B experiment, so rows are identical
/// at any pool width and stay in sweep order.
#[must_use]
pub fn queueing_sensitivity_with(pool: &ExecPool, seed: u64) -> Vec<QueueingAblationRow> {
    let workload = WorkloadSpec {
        non_kernel_cycles: 5_000.0,
        kernels_per_request: 1,
        granularity: accelerometer::GranularityCdf::from_points(vec![(2_048.0, 1.0)])
            .expect("valid CDF"),
        cycles_per_byte: cycles_per_byte(2.0),
    };
    let cores = 4usize;
    pool.map(&[16.0, 8.0, 4.0, 2.5], |_, &peak_speedup| {
        let control = SimConfig {
            cores,
            threads: cores,
            context_switch_cycles: 0.0,
            horizon: 4e8,
            seed,
            workload: workload.clone(),
            offload: None,
            fault: Default::default(),
            recovery: Default::default(),
        };
        let offload = OffloadConfig {
            design: ThreadingDesign::Sync,
            strategy: accelerometer::AccelerationStrategy::OffChip,
            driver: DriverMode::AwaitsAck,
            device: DeviceKind::Shared { servers: 1 },
            peak_speedup,
            interface_latency: 300.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        };
        let ab = run_ab(&control, offload);

        let alpha = workload.expected_alpha();
        let kernel_cycles = workload.kernels_per_request as f64
            * workload.cycles_per_byte.get()
            * workload.granularity.mean_bytes().get();
        let service = kernel_cycles / peak_speedup;
        let model = |q: f64| {
            // Per-core accounting: n offloads per C cycles on one core,
            // times `cores` against a shared device handled via Q.
            let c = 1e9 * cores as f64;
            let n = c / workload.mean_request_cycles();
            let params = ModelParams::builder()
                .host_cycles(c)
                .kernel_fraction(alpha)
                .offloads(n)
                .setup_cycles(50.0)
                .interface_cycles(300.0)
                .queueing_cycles(q)
                .peak_speedup(peak_speedup)
                .build()
                .expect("valid parameters");
            estimate(
                &params,
                ThreadingDesign::Sync,
                accelerometer::AccelerationStrategy::OffChip,
                DriverMode::AwaitsAck,
            )
            .throughput_gain_percent()
        };
        // An open-loop M/M/1 estimate wildly over-predicts here — four
        // closed-loop customers self-throttle — so use the workflow the
        // paper's eqn (1) supports: measure Q on the device and feed the
        // mean back into the model.
        let measured_q = ab.treatment.mean_queue_delay;
        let _ = service;
        QueueingAblationRow {
            peak_speedup,
            device_utilization: ab.treatment.device_utilization,
            simulated_queue_delay: measured_q,
            model_q0_percent: model(0.0),
            model_measured_q_percent: model(measured_q),
            simulated_percent: ab.speedup_percent(),
        }
    })
}

/// Ablation 3 result: one row per pool depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolDepthRow {
    /// Worker threads per core.
    pub threads_per_core: usize,
    /// Simulated speedup %.
    pub simulated_percent: f64,
    /// Core utilization in the accelerated run.
    pub core_utilization: f64,
}

/// Runs the Sync-OS pool-depth ablation against a high-latency (remote)
/// accelerator; the model's prediction is depth-independent and returned
/// alongside.
#[must_use]
pub fn pool_depth(seed: u64) -> (f64, Vec<PoolDepthRow>) {
    pool_depth_with(&ExecPool::default(), seed)
}

/// [`pool_depth`] with an explicit worker pool; rows stay in depth order
/// and are identical at any pool width.
#[must_use]
pub fn pool_depth_with(pool: &ExecPool, seed: u64) -> (f64, Vec<PoolDepthRow>) {
    let workload = WorkloadSpec {
        non_kernel_cycles: 6_000.0,
        kernels_per_request: 1,
        granularity: accelerometer::GranularityCdf::from_points(vec![(1_024.0, 1.0)])
            .expect("valid CDF"),
        cycles_per_byte: cycles_per_byte(2.0),
    };
    let cores = 4usize;
    let o1 = 600.0;
    let interface_latency = 40_000.0;
    let alpha = workload.expected_alpha();
    let c = 1e9 * cores as f64;
    let n = c / workload.mean_request_cycles();
    let params = ModelParams::builder()
        .host_cycles(c)
        .kernel_fraction(alpha)
        .offloads(n)
        .interface_cycles(interface_latency)
        .thread_switch_cycles(o1)
        .peak_speedup(8.0)
        .build()
        .expect("valid parameters");
    let model_percent = estimate(
        &params,
        ThreadingDesign::SyncOs,
        accelerometer::AccelerationStrategy::Remote,
        DriverMode::Posted,
    )
    .throughput_gain_percent();

    let rows = pool.map(&[1usize, 2, 4, 8, 12, 16], |_, &threads_per_core| {
        let control = SimConfig {
            cores,
            threads: cores * threads_per_core,
            context_switch_cycles: o1,
            horizon: 3e8,
            seed,
            workload: workload.clone(),
            offload: None,
            fault: Default::default(),
            recovery: Default::default(),
        };
        let offload = OffloadConfig {
            design: ThreadingDesign::SyncOs,
            strategy: accelerometer::AccelerationStrategy::Remote,
            driver: DriverMode::Posted,
            device: DeviceKind::Unlimited,
            peak_speedup: 8.0,
            interface_latency,
            setup_cycles: 0.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        };
        let ab = run_ab(&control, offload);
        PoolDepthRow {
            threads_per_core,
            simulated_percent: ab.speedup_percent(),
            core_utilization: ab.treatment.core_utilization,
        }
    });
    (model_percent, rows)
}

/// Prior-model comparison: what a blocking-offload model (LogCA-style,
/// "the CPU waits while the offload operates") predicts for each Table 6
/// case study versus Accelerometer and the production measurement.
///
/// This quantifies the paper's motivation (§3, §6): "existing models fall
/// short in the context of microservices as they assume that the CPU
/// waits while the offload operates."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorModelRow {
    /// Case study name.
    pub name: String,
    /// What a blocking-offload (sync-assumption) model predicts (%).
    pub blocking_model_percent: f64,
    /// What Accelerometer predicts (%).
    pub accelerometer_percent: f64,
    /// The production measurement (%).
    pub paper_real_percent: f64,
}

/// Evaluates the blocking-offload prior against each case study: same
/// parameters, but every offload treated as `Sync` (the accelerator's
/// time and all transfer overheads on the host's critical path).
#[must_use]
pub fn prior_model_comparison() -> Vec<PriorModelRow> {
    all_case_studies()
        .iter()
        .map(|study| {
            let scenario = &study.scenario;
            let blocking = estimate(
                &scenario.params,
                ThreadingDesign::Sync,
                scenario.strategy,
                scenario.driver,
            );
            PriorModelRow {
                name: study.name.clone(),
                blocking_model_percent: blocking.throughput_gain_percent(),
                accelerometer_percent: scenario.estimate().throughput_gain_percent(),
                paper_real_percent: study.paper_real_percent,
            }
        })
        .collect()
}

/// Renders all three ablations as text.
#[must_use]
pub fn render_all(seed: u64) -> String {
    let mut out = String::new();

    let a = alpha_weighting(seed);
    out.push_str(&table(
        "Ablation 1: count- vs byte-weighted alpha scaling (Feed1 off-chip Sync compression)",
        &["quantity", "value"],
        &[
            vec!["break-even".into(), format!("{:.0} B", a.breakeven_bytes)],
            vec![
                "lucrative offloads (count)".into(),
                format!("{:.1}%", a.count_fraction * 100.0),
            ],
            vec![
                "lucrative bytes".into(),
                format!("{:.1}%", a.byte_fraction * 100.0),
            ],
            vec![
                "model, count-weighted alpha (paper)".into(),
                format!("{:+.2}%", a.count_weighted_percent),
            ],
            vec![
                "model, byte-weighted alpha".into(),
                format!("{:+.2}%", a.byte_weighted_percent),
            ],
            vec![
                "simulated selective offload".into(),
                format!("{:+.2}%", a.simulated_percent),
            ],
        ],
    ));
    out.push_str(
        "finding: kernel cycles follow bytes, so byte-weighted alpha matches the\n\
         executed offload; the paper's count-weighted rule under-projects here.\n\n",
    );

    let rows: Vec<Vec<String>> = queueing_sensitivity(seed)
        .into_iter()
        .map(|r| {
            vec![
                format!("{}", r.peak_speedup),
                format!("{:.0}%", r.device_utilization * 100.0),
                format!("{:.0}", r.simulated_queue_delay),
                format!("{:+.2}%", r.model_q0_percent),
                format!("{:+.2}%", r.model_measured_q_percent),
                format!("{:+.2}%", r.simulated_percent),
            ]
        })
        .collect();
    out.push_str(&table(
        "Ablation 2: Q = 0 assumption vs emergent queueing (shared off-chip device, 4 cores)",
        &["A", "device util", "sim Q (cyc)", "model Q=0", "model w/ measured Q", "simulated"],
        &rows,
    ));
    out.push_str(
        "finding: Q = 0 over-projects as the device saturates; feeding the\n\
         measured mean queue delay back into eqn (1) recovers most of the gap\n\
         (open-loop M/M/1 estimates over-correct badly for closed-loop hosts).\n\n",
    );

    let (model_percent, rows) = pool_depth(seed);
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                format!("{}", r.threads_per_core),
                format!("{:+.2}%", r.simulated_percent),
                format!("{:.0}%", r.core_utilization * 100.0),
            ]
        })
        .collect();
    out.push_str(&table(
        &format!(
            "Ablation 3: Sync-OS pool depth vs a 40k-cycle offload (model predicts {model_percent:+.2}% at any depth)"
        ),
        &["threads/core", "simulated", "core util"],
        &rows,
    ));
    out.push_str(
        "finding: the model's Sync-OS equation implicitly assumes the pool hides\n\
         the full offload round trip; shallow pools idle cores and miss it badly.\n\n",
    );

    let rows: Vec<Vec<String>> = prior_model_comparison()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                format!("{:+.2}%", r.blocking_model_percent),
                format!("{:+.2}%", r.accelerometer_percent),
                format!("{:+.2}%", r.paper_real_percent),
            ]
        })
        .collect();
    out.push_str(&table(
        "Prior-model comparison: blocking-offload assumption vs Accelerometer (Table 6 cases)",
        &["case", "blocking model", "Accelerometer", "production"],
        &rows,
    ));
    out.push_str(
        "finding: a LogCA-style blocking model predicts remote inference is a\n\
         9% *loss*; Accelerometer's threading-aware view predicts the +72%\n\
         production actually measured (+69%). This is the paper's raison d'etre.\n\
         (For the mildly-async encryption case the blocking prior lands near\n\
         production by accident: its under-prediction roughly cancels the\n\
         unmodeled production overheads.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_weighting_matches_simulated_truth() {
        let a = alpha_weighting(77);
        // Bytes concentrate in large offloads: byte fraction far exceeds
        // the count fraction.
        assert!(a.byte_fraction > a.count_fraction + 0.15);
        // The simulator executes cycles-by-bytes, so byte-weighted alpha
        // lands within 1.5 points of it while count-weighted misses by
        // several.
        let byte_err = (a.byte_weighted_percent - a.simulated_percent).abs();
        let count_err = (a.count_weighted_percent - a.simulated_percent).abs();
        assert!(byte_err < 1.5, "byte-weighted err {byte_err:.2}");
        assert!(count_err > byte_err, "count {count_err:.2} vs byte {byte_err:.2}");
        // And the paper's own number is the count-weighted one.
        assert!((a.count_weighted_percent - 9.0).abs() < 0.3);
    }

    #[test]
    fn queueing_gap_grows_with_load_and_measured_q_recovers_it() {
        let rows = queueing_sensitivity(78);
        assert_eq!(rows.len(), 4);
        // Utilization rises as the device slows.
        assert!(rows.last().unwrap().device_utilization > rows[0].device_utilization);
        // At the highest load, Q = 0 over-projects by several points and
        // feeding the measured Q back recovers most of the gap.
        let hot = rows.last().unwrap();
        assert!(hot.simulated_queue_delay > 100.0, "no queueing emerged");
        let q0_err = (hot.model_q0_percent - hot.simulated_percent).abs();
        let measured_err = (hot.model_measured_q_percent - hot.simulated_percent).abs();
        assert!(q0_err > 1.0, "Q=0 error only {q0_err:.2}");
        assert!(
            measured_err < q0_err / 2.0,
            "measured-Q {measured_err:.2} vs Q=0 {q0_err:.2}"
        );
        // At light load the two coincide.
        let cold = &rows[0];
        assert!((cold.model_q0_percent - cold.model_measured_q_percent).abs() < 0.5);
    }

    #[test]
    fn deep_pools_converge_to_the_model() {
        let (model_percent, rows) = pool_depth(79);
        // Shallow pools miss the model badly...
        let shallow = rows.first().unwrap();
        assert!(
            (shallow.simulated_percent - model_percent).abs() > 10.0,
            "shallow pool too close: {} vs {model_percent}",
            shallow.simulated_percent
        );
        // ...deep pools converge.
        let deep = rows.last().unwrap();
        assert!(
            (deep.simulated_percent - model_percent).abs() < 2.0,
            "deep pool {} vs model {model_percent}",
            deep.simulated_percent
        );
        // Monotone improvement with depth.
        for pair in rows.windows(2) {
            assert!(pair[1].simulated_percent >= pair[0].simulated_percent - 0.5);
        }
    }

    #[test]
    fn blocking_model_mispredicts_async_offloads() {
        let rows = prior_model_comparison();
        assert_eq!(rows.len(), 3);
        // AES-NI is genuinely synchronous: the two models agree.
        let aes = &rows[0];
        assert!((aes.blocking_model_percent - aes.accelerometer_percent).abs() < 1e-9);
        // Remote inference: the blocking prior predicts a *slowdown*
        // while Accelerometer (and production) see ~+70%.
        let inference = rows.iter().find(|r| r.name == "inference").unwrap();
        assert!(
            inference.blocking_model_percent < 0.0,
            "blocking model predicted {:+.2}%",
            inference.blocking_model_percent
        );
        assert!(inference.accelerometer_percent > 70.0);
        // For the dramatic asynchronous case, Accelerometer is vastly
        // closer to production (the blocking prior predicts the wrong
        // *sign*). For the mildly-async encryption case the blocking
        // prior happens to land near production by accident — it
        // under-predicts the model's value for the wrong reason, roughly
        // cancelling the unmodeled production overheads.
        let prior_err = (inference.blocking_model_percent - inference.paper_real_percent).abs();
        let accel_err = (inference.accelerometer_percent - inference.paper_real_percent).abs();
        assert!(accel_err < prior_err / 10.0, "{accel_err} vs {prior_err}");
    }

    #[test]
    fn render_includes_findings() {
        let text = render_all(80);
        assert!(text.contains("Ablation 1"));
        assert!(text.contains("Ablation 2"));
        assert!(text.contains("Ablation 3"));
        assert!(text.contains("finding:"));
    }
}
