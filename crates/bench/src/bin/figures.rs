//! Regenerates the paper's figures: `figures [figN ...|all] [--json]`.

use accelerometer_bench::{figure, figure_json, FIGURE_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--json")
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        FIGURE_IDS.to_vec()
    } else {
        requested
    };
    let mut failed = false;
    for id in ids {
        if json {
            match figure_json(id) {
                Some(value) => println!(
                    "{}",
                    serde_json::to_string_pretty(&serde_json::json!({ id: value }))
                        .expect("figure data serializes")
                ),
                None => {
                    eprintln!("no JSON series for {id} (timeline figures are text-only)");
                }
            }
        } else if id == "design-space" {
            // Extra (non-paper) figure: the A x L heatmap per design.
            for design in [
                accelerometer::ThreadingDesign::Sync,
                accelerometer::ThreadingDesign::SyncOs,
                accelerometer::ThreadingDesign::AsyncNoResponse,
            ] {
                println!(
                    "{}",
                    accelerometer_bench::design_space::render(2.3e9, 0.15, 15_008.0, design)
                );
            }
        } else {
            match figure(id) {
                Some(text) => println!("{text}"),
                None => {
                    eprintln!("unknown figure id: {id} (expected fig1..fig22, or design-space)");
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
