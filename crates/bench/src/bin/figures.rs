//! Regenerates the paper's figures: `figures [figN ...|all] [--json]
//! [--jobs N] [--services <dir|file>]`.

use accelerometer_bench::{apply_jobs_flag, apply_services_flag, figure, figure_json, FIGURE_IDS};
use accelerometer_sim::parallel::ExecPool;

/// One figure's printable output, computed off the main thread.
enum Rendered {
    Text(String),
    Json(String),
    UnknownId,
    NoJson,
}

fn render(id: &str, json: bool) -> Rendered {
    if json {
        match figure_json(id) {
            Some(value) => Rendered::Json(
                serde_json::to_string_pretty(&serde_json::json!({ id: value }))
                    .expect("figure data serializes"),
            ),
            None => Rendered::NoJson,
        }
    } else if id == "design-space" {
        // Extra (non-paper) figure: the A x L heatmap per design.
        let mut out = String::new();
        for design in [
            accelerometer::ThreadingDesign::Sync,
            accelerometer::ThreadingDesign::SyncOs,
            accelerometer::ThreadingDesign::AsyncNoResponse,
        ] {
            out.push_str(&accelerometer_bench::design_space::render(
                2.3e9, 0.15, 15_008.0, design,
            ));
            out.push('\n');
        }
        out.pop();
        Rendered::Text(out)
    } else {
        match figure(id) {
            Some(text) => Rendered::Text(text),
            None => Rendered::UnknownId,
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = apply_jobs_flag(&mut args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
    if let Err(message) = apply_services_flag(&mut args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
    let json = args.iter().any(|a| a == "--json");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--json")
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        FIGURE_IDS.to_vec()
    } else {
        requested
    };
    // Build independent figures in parallel, print in request order.
    let rendered = ExecPool::default().map(&ids, |_, id| render(id, json));
    let mut failed = false;
    for (id, out) in ids.iter().zip(rendered) {
        match out {
            Rendered::Text(text) | Rendered::Json(text) => println!("{text}"),
            Rendered::NoJson => {
                eprintln!("no JSON series for {id} (timeline figures are text-only)");
            }
            Rendered::UnknownId => {
                eprintln!("unknown figure id: {id} (expected fig1..fig22, or design-space)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
