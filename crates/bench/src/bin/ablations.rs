//! Runs the ablation studies: `ablations [--seed N] [--jobs N]
//! [--services <dir|file>]`.
//!
//! Prefer a release build — each ablation runs simulator A/B
//! experiments: `cargo run --release -p accelerometer-bench --bin
//! ablations`.

use accelerometer_bench::{apply_jobs_flag, apply_services_flag};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = apply_jobs_flag(&mut args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
    if let Err(message) = apply_services_flag(&mut args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_260_706);
    println!("{}", accelerometer_bench::ablations::render_all(seed));
}
