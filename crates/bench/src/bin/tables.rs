//! Regenerates the paper's tables: `tables [tableN ...|all]`.
//!
//! `table6` runs the simulator's deterministic A/B validation, so prefer
//! a release build: `cargo run --release -p accelerometer-bench --bin
//! tables -- table6`.

use accelerometer_bench::{render_table, TABLE_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        TABLE_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in ids {
        match render_table(id) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown table id: {id} (expected table1..table7)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
