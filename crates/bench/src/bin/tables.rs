//! Regenerates the paper's tables: `tables [tableN ...|all] [--jobs N]
//! [--services <dir|file>]`.
//!
//! `table6` runs the simulator's deterministic A/B validation, so prefer
//! a release build: `cargo run --release -p accelerometer-bench --bin
//! tables -- table6`.

use accelerometer_bench::{apply_jobs_flag, apply_services_flag, render_table, TABLE_IDS};
use accelerometer_sim::parallel::ExecPool;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = apply_jobs_flag(&mut args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
    if let Err(message) = apply_services_flag(&mut args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        TABLE_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    // Render independent tables in parallel, print in request order.
    let rendered = ExecPool::default().map(&ids, |_, id| render_table(id));
    let mut failed = false;
    for (id, text) in ids.iter().zip(rendered) {
        match text {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("unknown table id: {id} (expected table1..table7)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
