//! Terminal rendering: stacked bars, grouped bars, aligned tables, and
//! CDF plots — enough to print every figure of the paper as text.

use std::fmt::Write as _;

/// Renders a horizontal stacked-bar chart: one row per entity, segments
/// proportional to percentages (summing to ≤100), with a legend.
#[must_use]
pub fn stacked_bars(
    title: &str,
    rows: &[(String, Vec<(String, f64)>)],
    width: usize,
) -> String {
    let glyphs = ['#', '=', '+', ':', '%', '@', 'o', '*', '.', '-', '~', '^'];
    let mut legend: Vec<String> = Vec::new();
    let mut out = format!("== {title} ==\n");
    let label_width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, segments) in rows {
        let mut bar = String::new();
        for (category, pct) in segments {
            let idx = match legend.iter().position(|c| c == category) {
                Some(i) => i,
                None => {
                    legend.push(category.clone());
                    legend.len() - 1
                }
            };
            let cells = (pct / 100.0 * width as f64).round() as usize;
            for _ in 0..cells {
                bar.push(glyphs[idx % glyphs.len()]);
            }
        }
        let _ = writeln!(out, "{name:>label_width$} |{bar:<width$}|");
    }
    out.push_str("legend:");
    for (i, category) in legend.iter().enumerate() {
        let _ = write!(out, " {}={category}", glyphs[i % glyphs.len()]);
    }
    out.push('\n');
    out
}

/// Renders an aligned text table.
#[must_use]
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("== {title} ==\n");
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(header_line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", header_line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Renders a grouped bar chart (e.g. IPC per category per generation):
/// `groups` are (group label, series values); `series` are the series
/// names, one value per series in each group.
#[must_use]
pub fn grouped_bars(
    title: &str,
    series: &[&str],
    groups: &[(String, Vec<f64>)],
    max_value: f64,
    width: usize,
) -> String {
    let mut out = format!("== {title} ==\n");
    let label_width = groups
        .iter()
        .map(|(n, _)| n.len())
        .chain(series.iter().map(|s| s.len()))
        .max()
        .unwrap_or(0);
    for (group, values) in groups {
        let _ = writeln!(out, "{group}:");
        for (name, value) in series.iter().zip(values) {
            let cells = ((value / max_value) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "  {name:>label_width$} |{} {value:.2}",
                "#".repeat(cells.min(width))
            );
        }
    }
    out
}

/// Renders one or more CDFs as an ASCII plot over a log-ish byte axis,
/// with optional vertical markers (e.g. break-even granularities).
#[must_use]
pub fn cdf_plot(
    title: &str,
    series: &[(String, Vec<(f64, f64)>)],
    markers: &[(String, f64)],
    height: usize,
) -> String {
    let width = 64usize;
    let max_bytes = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(g, _)| *g))
        .fold(1.0_f64, f64::max);
    let x_of = |bytes: f64| -> usize {
        // log scale from 1 byte.
        let frac = (bytes.max(1.0)).ln() / max_bytes.ln();
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let glyphs = ['*', 'o', '+', 'x'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, points)) in series.iter().enumerate() {
        let mut prev: Option<(f64, f64)> = None;
        for &(g, f) in points {
            // Interpolate a few intermediate samples per segment.
            if let Some((g0, f0)) = prev {
                for step in 0..=8 {
                    let t = f64::from(step) / 8.0;
                    let gg = g0 + (g - g0) * t;
                    let ff = f0 + (f - f0) * t;
                    let x = x_of(gg);
                    let y = ((1.0 - ff) * (height - 1) as f64).round() as usize;
                    grid[y.min(height - 1)][x] = glyphs[si % glyphs.len()];
                }
            }
            prev = Some((g, f));
        }
    }
    for (_, bytes) in markers {
        let x = x_of(*bytes);
        for row in &mut grid {
            if row[x] == ' ' {
                row[x] = '|';
            }
        }
    }
    let mut out = format!("== {title} ==\n");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "1.0"
        } else if i == height - 1 {
            "0.0"
        } else {
            "   "
        };
        let _ = writeln!(out, "{label} {}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "    1B{:>width$}", format!("{max_bytes:.0}B"), width = width - 2);
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {name}", glyphs[si % glyphs.len()]);
    }
    for (name, bytes) in markers {
        let _ = writeln!(out, "  | at {bytes:.0} B: {name}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_bars_render_rows_and_legend() {
        let rows = vec![
            (
                "Web".to_owned(),
                vec![("App".to_owned(), 18.0), ("Orchestration".to_owned(), 82.0)],
            ),
            (
                "Cache1".to_owned(),
                vec![("App".to_owned(), 14.0), ("Orchestration".to_owned(), 86.0)],
            ),
        ];
        let art = stacked_bars("Fig 1", &rows, 50);
        assert!(art.contains("== Fig 1 =="));
        assert!(art.contains("Web"));
        assert!(art.contains("Cache1"));
        assert!(art.contains("legend: #=App ==Orchestration"));
        // Bars fill roughly the width.
        let web_line = art.lines().find(|l| l.contains("Web")).unwrap();
        assert!(web_line.matches('=').count() > 30);
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            "Table 1",
            &["Platform", "Cores"],
            &[
                vec!["GenA".into(), "12".into()],
                vec!["GenC-twenty".into(), "20".into()],
            ],
        );
        assert!(out.contains("Platform"));
        let lines: Vec<&str> = out.lines().collect();
        // Header separator present.
        assert!(lines[2].starts_with('-'));
        // Column alignment: "Cores" starts at the same offset in header
        // and rows.
        let header_pos = lines[1].find("Cores").unwrap();
        let row_pos = lines[4].find("20").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn grouped_bars_scale_to_max() {
        let out = grouped_bars(
            "Fig 8",
            &["GenA", "GenC"],
            &[("Kernel".to_owned(), vec![0.35, 0.38])],
            2.0,
            40,
        );
        assert!(out.contains("Kernel:"));
        assert!(out.contains("0.35"));
        let gena = out.lines().find(|l| l.contains("GenA")).unwrap();
        assert_eq!(gena.matches('#').count(), 7); // 0.35/2*40 = 7
    }

    #[test]
    fn cdf_plot_draws_series_and_markers() {
        let series = vec![(
            "Feed1".to_owned(),
            vec![(1.0, 0.0), (1024.0, 0.5), (65536.0, 1.0)],
        )];
        let markers = vec![("break-even".to_owned(), 425.0)];
        let art = cdf_plot("Fig 19", &series, &markers, 10);
        assert!(art.contains('*'));
        assert!(art.contains('|'));
        assert!(art.contains("break-even"));
        assert!(art.contains("1.0"));
        assert!(art.contains("0.0"));
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let _ = stacked_bars("t", &[], 40);
        let _ = table("t", &["a"], &[]);
        let _ = grouped_bars("t", &[], &[], 1.0, 10);
        let _ = cdf_plot("t", &[], &[], 5);
    }
}
