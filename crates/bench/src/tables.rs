//! Regeneration of every table in the paper (Tables 1–7).

use accelerometer::project;
use accelerometer_fleet::params::all_recommendations;
use accelerometer_fleet::{
    all_case_studies, FunctionalityCategory, LeafCategory, ALL_PLATFORMS, FINDINGS,
};
use accelerometer_sim::validate_all;

use crate::render::table;

/// All table identifiers, in paper order.
pub const TABLE_IDS: [&str; 7] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
];

/// Renders one table by identifier. `table6` runs the simulator's A/B
/// validation (deterministic, seeded).
#[must_use]
pub fn render_table(id: &str) -> Option<String> {
    Some(match id {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(),
        "table6" => table6(),
        "table7" => table7(),
        _ => return None,
    })
}

fn table1() -> String {
    let rows: Vec<Vec<String>> = ALL_PLATFORMS
        .iter()
        .map(|p| {
            vec![
                p.generation.to_string(),
                p.generation.microarchitecture().to_owned(),
                p.cores_per_socket.to_string(),
                p.smt.to_string(),
                format!("{} B", p.cache_block_bytes),
                format!("{} KiB", p.l1i_kib),
                format!("{} KiB", p.l1d_kib),
                format!("{} KiB", p.l2_kib),
                format!("{:.2} MiB", f64::from(p.llc_kib) / 1024.0),
            ]
        })
        .collect();
    table(
        "Table 1: GenA, GenB, and GenC CPU platforms",
        &[
            "Gen", "uarch", "Cores", "SMT", "Block", "L1-I", "L1-D", "L2", "LLC",
        ],
        &rows,
    )
}

fn table2() -> String {
    let rows: Vec<Vec<String>> = LeafCategory::ALL
        .iter()
        .map(|c| vec![c.label().to_owned(), c.examples().to_owned()])
        .collect();
    table(
        "Table 2: categorization of leaf functions",
        &["Leaf category", "Examples"],
        &rows,
    )
}

fn table3() -> String {
    let rows: Vec<Vec<String>> = FunctionalityCategory::ALL
        .iter()
        .map(|c| vec![c.label().to_owned(), c.examples().to_owned()])
        .collect();
    table(
        "Table 3: categorization of microservice functionalities",
        &["Functionality category", "Examples"],
        &rows,
    )
}

fn table4() -> String {
    let rows: Vec<Vec<String>> = FINDINGS
        .iter()
        .map(|f| {
            vec![
                format!("{} ({})", f.finding, f.sections),
                f.opportunity.to_owned(),
            ]
        })
        .collect();
    table(
        "Table 4: summary of findings and suggested optimizations",
        &["Finding", "Acceleration opportunity"],
        &rows,
    )
}

fn table5() -> String {
    let rows = [
        ("C", "Total cycles spent by the host to execute all logic in a fixed time unit", "Cycles"),
        ("g", "Size of an offload", "Bytes"),
        ("n", "Number of times the host offloads a kernel of lucrative size in a fixed time unit", "-"),
        ("o0", "Cycles the host spends in setting up the kernel prior to a single offload", "Cycles"),
        ("Q", "Avg. cycles spent in queuing between host and accelerator for a single offload", "Cycles"),
        ("L", "Avg. cycles to move an offload from host to accelerator across the interface", "Cycles"),
        ("o1", "Cycles spent in switching threads for a single offload", "Cycles"),
        ("A", "Peak speedup of an accelerator", "-"),
        ("alpha", "A constant <= 1: the kernel's fraction of host cycles", "-"),
        ("Cb", "Cycles spent by the host per byte of offload data", "Cycles"),
    ];
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(s, d, u)| vec![(*s).to_owned(), (*d).to_owned(), (*u).to_owned()])
        .collect();
    table(
        "Table 5: Accelerometer model parameters",
        &["Symbol", "Description", "Units"],
        &rows,
    )
}

fn table6() -> String {
    let mut rows = Vec::new();
    let validations = validate_all(20_260_706);
    for (study, validation) in all_case_studies().iter().zip(&validations) {
        let p = &study.scenario.params;
        let ovh = p.overheads();
        rows.push(vec![
            study.name.to_owned(),
            format!("{:.1e}", p.host_cycles().get()),
            format!("{:.6}", p.kernel_fraction()),
            format!("{}", p.offloads()),
            format!("{}", ovh.setup.get()),
            format!("{}", ovh.queueing.get()),
            format!("{}", ovh.interface.get()),
            format!("{}", ovh.thread_switch.get()),
            format!("{}", p.peak_speedup()),
            format!("{:.2}%", validation.model_estimate_percent),
            format!("{:.2}%", validation.simulated_percent),
            format!("{:.1}% / {:.2}%", study.paper_estimated_percent, study.paper_real_percent),
        ]);
    }
    let mut out = table(
        "Table 6: case-study parameters, model estimates, and measured speedups",
        &[
            "Case", "C", "alpha", "n", "o0", "Q", "L", "o1", "A", "Est.", "Simulated",
            "Paper est./real",
        ],
        &rows,
    );
    let max_err = validations
        .iter()
        .map(|v| v.model_vs_simulated_points())
        .fold(0.0, f64::max);
    out.push_str(&format!(
        "max model-vs-simulated error: {max_err:.2} points (paper: <= 3.7)\n"
    ));
    out
}

fn table7() -> String {
    let mut rows = Vec::new();
    for rec in all_recommendations() {
        for cfg in &rec.configs {
            let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy)
                .expect("static parameters are valid");
            let ovh = cfg.accelerator.overheads;
            rows.push(vec![
                rec.name.to_owned(),
                cfg.label.to_owned(),
                format!("{:.1e}", rec.profile.total_cycles.get()),
                format!("{:.4}", p.selection.alpha),
                format!("{:.0}", p.selection.offloads),
                format!("{}", ovh.interface.get()),
                format!("{}", ovh.thread_switch.get()),
                format!("{}", cfg.accelerator.peak_speedup),
                format!("{:.2}%", p.estimate.throughput_gain_percent()),
                format!("{:.1}%", cfg.paper_speedup_percent),
            ]);
        }
    }
    table(
        "Table 7: parameters for the Section 5 acceleration recommendations",
        &[
            "Overhead", "Acceleration", "C", "eff. alpha", "n", "L", "o1", "A", "Projected",
            "Paper",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_renders() {
        // table6 runs the simulator; keep it out of the cheap loop.
        for id in TABLE_IDS.iter().filter(|id| **id != "table6") {
            let text = render_table(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(text.contains("=="), "{id} lacks a title");
            assert!(text.lines().count() > 4, "{id} too short");
        }
        assert!(render_table("table99").is_none());
    }

    #[test]
    fn table1_lists_both_skylakes() {
        let text = table1();
        assert!(text.contains("18"));
        assert!(text.contains("20"));
        assert!(text.contains("Haswell"));
        assert!(text.contains("24.75 MiB"));
    }

    #[test]
    fn table4_has_all_findings() {
        let text = table4();
        for f in FINDINGS {
            assert!(text.contains(f.opportunity), "{} missing", f.id);
        }
    }

    #[test]
    fn table7_reports_lucrative_counts() {
        let text = table7();
        // §5's lucrative offload counts appear.
        assert!(text.contains("15008"));
        // The off-chip Sync lucrative count lands within interpolation
        // error of the paper's 9,629.
        let n: f64 = text
            .lines()
            .find(|l| l.contains("Off-chip:Sync ") || l.contains("Off-chip:Sync  "))
            .and_then(|l| l.split_whitespace().find(|t| t.starts_with("96")))
            .and_then(|t| t.parse().ok())
            .expect("sync row present");
        assert!((n - 9_629.0).abs() < 60.0, "n = {n}");
    }

    #[test]
    fn table6_runs_the_ab_validation() {
        let text = table6();
        assert!(text.contains("aes-ni"));
        assert!(text.contains("inference"));
        assert!(text.contains("max model-vs-simulated error"));
    }
}
