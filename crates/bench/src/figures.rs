//! Regeneration of every figure in the paper (Figs. 1–22).
//!
//! Each builder returns the figure's rendered text; [`figure`] dispatches
//! by identifier and [`figure_json`] exposes the underlying series as
//! machine-readable JSON for plotting.

use accelerometer::units::cycles_per_byte;
use accelerometer::{
    project, throughput_breakeven, BreakEven, DriverMode, KernelCost, OffloadContext, Scenario,
    ThreadingDesign, Timeline,
};
use accelerometer_fleet::ipc::{
    cache1_functionality_ipc, cache1_leaf_ipc, FIG10_CATEGORIES, FIG8_CATEGORIES,
};
use accelerometer_fleet::params::{
    aes_ni_cache1, all_recommendations, encryption_cache3, inference_ads1,
};
use accelerometer_fleet::reference::{
    kernel_breakdown, leaf_breakdown, memory_breakdown, ReferenceWorkload,
};
use accelerometer_fleet::{
    cdf, profile, Breakdown, FunctionalityCategory, LeafCategory, ServiceId,
};
use serde_json::{json, Value};

use crate::render::{cdf_plot, grouped_bars, stacked_bars};

/// All figure identifiers, in paper order.
pub const FIGURE_IDS: [&str; 22] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "fig22",
];

/// Renders one figure by identifier (`"fig1"`–`"fig22"`).
#[must_use]
pub fn figure(id: &str) -> Option<String> {
    Some(match id {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => timeline_figure(
            "Fig 11: example timeline of host & accelerator (one offload)",
            ThreadingDesign::SyncOs,
        ),
        "fig12" => timeline_figure("Fig 12: Sync offload timeline", ThreadingDesign::Sync),
        "fig13" => timeline_figure("Fig 13: Sync-OS offload timeline", ThreadingDesign::SyncOs),
        "fig14" => timeline_figure(
            "Fig 14: Async offload timeline",
            ThreadingDesign::AsyncSameThread,
        ),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "fig18" => fig18(),
        "fig19" => fig19(),
        "fig20" => fig20(),
        "fig21" => fig21(),
        "fig22" => fig22(),
        _ => return None,
    })
}

/// The underlying series of a figure as JSON (for external plotting).
#[must_use]
pub fn figure_json(id: &str) -> Option<Value> {
    Some(match id {
        "fig1" => rows_json(&fig1_rows()),
        "fig2" => rows_json(&fig2_rows()),
        "fig3" => rows_json(&fig3_rows()),
        "fig4" => rows_json(&fig4_rows()),
        "fig5" => rows_json(&fig5_rows()),
        "fig6" => rows_json(&fig6_rows()),
        "fig7" => rows_json(&fig7_rows()),
        "fig8" => ipc_json(&fig8_groups()),
        "fig9" => rows_json(&fig9_rows()),
        "fig10" => ipc_json(&fig10_groups()),
        "fig15" => cdf_json(&[("Cache1".into(), cdf::cache1_encryption().points().to_vec())]),
        "fig16" => rows_json(&fig16_rows()),
        "fig17" => rows_json(&fig17_rows()),
        "fig18" => rows_json(&fig18_rows()),
        "fig19" => cdf_json(&[
            ("Feed1".into(), cdf::feed1_compression().points().to_vec()),
            ("Cache1".into(), cdf::cache1_compression().points().to_vec()),
        ]),
        "fig20" => fig20_json(),
        "fig21" => cdf_json(&copy_cdf_series()),
        "fig22" => cdf_json(&alloc_cdf_series()),
        _ => return None,
    })
}

type Rows = Vec<(String, Vec<(String, f64)>)>;

fn rows_json(rows: &Rows) -> Value {
    json!(rows
        .iter()
        .map(|(name, segments)| {
            json!({
                "name": name,
                "segments": segments.iter().map(|(c, p)| json!({"category": c, "percent": p})).collect::<Vec<_>>(),
            })
        })
        .collect::<Vec<_>>())
}

fn ipc_json(groups: &[(String, Vec<f64>)]) -> Value {
    json!(groups
        .iter()
        .map(|(name, values)| json!({"category": name, "gen_a": values[0], "gen_b": values[1], "gen_c": values[2]}))
        .collect::<Vec<_>>())
}

fn cdf_json(series: &[(String, Vec<(f64, f64)>)]) -> Value {
    json!(series
        .iter()
        .map(|(name, points)| json!({"series": name, "points": points}))
        .collect::<Vec<_>>())
}

fn breakdown_rows<C: Copy + PartialEq + std::fmt::Display>(
    services: &[ServiceId],
    get: impl Fn(ServiceId) -> Breakdown<C>,
) -> Rows {
    services
        .iter()
        .map(|&id| {
            (
                id.to_string(),
                get(id)
                    .iter()
                    .map(|(c, p)| (c.to_string(), p))
                    .collect(),
            )
        })
        .collect()
}

fn fig1_rows() -> Rows {
    ServiceId::CHARACTERIZED
        .iter()
        .map(|&id| {
            let p = profile(id);
            (
                id.to_string(),
                vec![
                    ("Application Logic".to_owned(), p.core_percent()),
                    ("Orchestration".to_owned(), p.orchestration_percent()),
                ],
            )
        })
        .collect()
}

fn fig1() -> String {
    stacked_bars(
        "Fig 1: cycles in core application logic vs orchestration",
        &fig1_rows(),
        60,
    )
}

fn fig2_rows() -> Rows {
    let mut rows = breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).leaves);
    for workload in ReferenceWorkload::ALL {
        rows.push((
            workload.label().to_owned(),
            leaf_breakdown(workload)
                .iter()
                .map(|(c, p)| (c.to_string(), p))
                .collect(),
        ));
    }
    rows
}

fn fig2() -> String {
    stacked_bars(
        "Fig 2: cycles in leaf-function categories",
        &fig2_rows(),
        60,
    )
}

fn fig3_rows() -> Rows {
    let mut rows = breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).memory_ops);
    for workload in ReferenceWorkload::ALL {
        rows.push((
            workload.label().to_owned(),
            memory_breakdown(workload)
                .iter()
                .map(|(c, p)| (c.to_string(), p))
                .collect(),
        ));
    }
    rows
}

fn fig3() -> String {
    let mut out = stacked_bars(
        "Fig 3: memory leaf functions (share of memory cycles)",
        &fig3_rows(),
        60,
    );
    out.push_str("net memory share of total cycles:");
    for &id in &ServiceId::CHARACTERIZED {
        let net = profile(id).leaves.percent(LeafCategory::Memory);
        out.push_str(&format!(" {id}={net:.0}%"));
    }
    out.push('\n');
    out
}

fn fig4_rows() -> Rows {
    breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).copy_origins)
}

fn fig4() -> String {
    let mut out = stacked_bars(
        "Fig 4: service functionalities that invoke memory copies",
        &fig4_rows(),
        60,
    );
    out.push_str("net copy share of total cycles:");
    for &id in &ServiceId::CHARACTERIZED {
        let p = profile(id);
        let net = 100.0 * p.memory_op_fraction(accelerometer_fleet::MemoryOp::Copy);
        out.push_str(&format!(" {id}={net:.0}%"));
    }
    out.push('\n');
    out
}

fn fig5_rows() -> Rows {
    let mut rows = breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).kernel_ops);
    if let Some(google) = kernel_breakdown(ReferenceWorkload::Google) {
        rows.push((
            ReferenceWorkload::Google.label().to_owned(),
            google.iter().map(|(c, p)| (c.to_string(), p)).collect(),
        ));
    }
    rows
}

fn fig5() -> String {
    stacked_bars(
        "Fig 5: kernel leaf functions (share of kernel cycles)",
        &fig5_rows(),
        60,
    )
}

fn fig6_rows() -> Rows {
    breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).sync_ops)
}

fn fig6() -> String {
    stacked_bars(
        "Fig 6: synchronization leaf functions (share of sync cycles)",
        &fig6_rows(),
        60,
    )
}

fn fig7_rows() -> Rows {
    breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).clib_ops)
}

fn fig7() -> String {
    stacked_bars(
        "Fig 7: C-library leaf functions (share of C-library cycles)",
        &fig7_rows(),
        60,
    )
}

fn fig8_groups() -> Vec<(String, Vec<f64>)> {
    FIG8_CATEGORIES
        .iter()
        .map(|&cat| {
            let s = cache1_leaf_ipc(cat).expect("Fig. 8 categories are covered");
            (cat.to_string(), vec![s.gen_a, s.gen_b, s.gen_c])
        })
        .collect()
}

fn fig8() -> String {
    grouped_bars(
        "Fig 8: Cache1 per-core IPC across CPU generations (leaf categories)",
        &["GenA", "GenB", "GenC"],
        &fig8_groups(),
        2.0,
        40,
    )
}

fn fig9_rows() -> Rows {
    breakdown_rows(&ServiceId::CHARACTERIZED, |id| profile(id).functionality)
}

fn fig9() -> String {
    stacked_bars(
        "Fig 9: cycles in microservice functionalities",
        &fig9_rows(),
        60,
    )
}

fn fig10_groups() -> Vec<(String, Vec<f64>)> {
    FIG10_CATEGORIES
        .iter()
        .map(|&cat| {
            let s = cache1_functionality_ipc(cat).expect("Fig. 10 categories are covered");
            (cat.to_string(), vec![s.gen_a, s.gen_b, s.gen_c])
        })
        .collect()
}

fn fig10() -> String {
    grouped_bars(
        "Fig 10: Cache1 per-core IPC across CPU generations (functionalities)",
        &["GenA", "GenB", "GenC"],
        &fig10_groups(),
        1.0,
        40,
    )
}

fn timeline_figure(title: &str, design: ThreadingDesign) -> String {
    use accelerometer::{AccelerationStrategy, OffloadOverheads};
    let spec = accelerometer::timeline::TimelineSpec {
        kernel_cycles: accelerometer::Cycles::new(10_000.0),
        peak_speedup: 10.0,
        overheads: OffloadOverheads::new(300.0, 600.0, 200.0, 500.0),
        design,
        strategy: AccelerationStrategy::OffChip,
        driver: DriverMode::AwaitsAck,
    };
    format!("== {title} ==\n{}", Timeline::build(spec).render_ascii(70))
}

fn fig15() -> String {
    // Break-even for AES-NI under the case-study context.
    let study = aes_ni_cache1();
    let ovh = study.scenario.params.overheads();
    let ctx = OffloadContext::new(
        ovh,
        study.scenario.params.peak_speedup(),
        study.scenario.design,
        study.scenario.strategy,
    );
    let cost = KernelCost::linear(cycles_per_byte(study.cycles_per_byte));
    let be = throughput_breakeven(&cost, &ctx);
    let marker = be.threshold().map_or(1.0, |b| b.get().max(1.0));
    cdf_plot(
        "Fig 15: CDF of bytes encrypted in Cache1",
        &[(
            "Cache1".to_owned(),
            cdf::cache1_encryption().points().to_vec(),
        )],
        &[(format!("min AES-NI g for speedup > 1 ({marker:.1} B)"), marker)],
        12,
    )
}

/// Reconstructs a functionality breakdown after acceleration: the target
/// category's kernel cycles shrink per the scenario's estimate, overhead
/// cycles land on `overhead_to`, and everything renormalizes to the new
/// (smaller) total — the construction behind Figs. 16–18.
fn accelerated_split(
    service: ServiceId,
    target: FunctionalityCategory,
    alpha: f64,
    scenario: &Scenario,
    overhead_to: FunctionalityCategory,
) -> Vec<(FunctionalityCategory, f64)> {
    let est = scenario.estimate();
    let c = scenario.params.host_cycles().get();
    let n = scenario.params.offloads();
    // Overhead points charged to the host per the throughput path.
    let cs_fraction = est.host_cycles_accelerated.get() / c;
    let accel_on_host = if scenario.design.accelerator_time_on_throughput_path() {
        alpha / scenario.params.peak_speedup()
    } else {
        0.0
    };
    // Total host fraction = (1 - alpha) + accel_on_host + overheads/C.
    let overhead_fraction = cs_fraction - (1.0 - alpha) - accel_on_host;
    debug_assert!(overhead_fraction >= -1e-9, "negative overhead {overhead_fraction}");
    let _ = n;

    let mut points: Vec<(FunctionalityCategory, f64)> = profile(service)
        .functionality
        .iter()
        .collect();
    for (cat, pct) in &mut points {
        if *cat == target {
            *pct -= 100.0 * (alpha - accel_on_host);
        }
        if *cat == overhead_to {
            *pct += 100.0 * overhead_fraction;
        }
    }
    // Renormalize to percentages of the accelerated total.
    let total: f64 = points.iter().map(|(_, p)| p).sum();
    points
        .into_iter()
        .filter(|(_, p)| *p > 0.05)
        .map(|(c2, p)| (c2, p / total * 100.0))
        .collect()
}

fn before_after_rows(
    service: ServiceId,
    labels: (&str, &str),
    after: Vec<(FunctionalityCategory, f64)>,
) -> Rows {
    vec![
        (
            labels.0.to_owned(),
            profile(service)
                .functionality
                .iter()
                .map(|(c, p)| (c.to_string(), p))
                .collect(),
        ),
        (
            labels.1.to_owned(),
            after.into_iter().map(|(c, p)| (c.to_string(), p)).collect(),
        ),
    ]
}

fn fig16_rows() -> Rows {
    let study = aes_ni_cache1();
    let after = accelerated_split(
        ServiceId::Cache1,
        FunctionalityCategory::SecureInsecureIo,
        study.scenario.params.kernel_fraction(),
        &study.scenario,
        FunctionalityCategory::SecureInsecureIo,
    );
    before_after_rows(ServiceId::Cache1, ("No AES-NI", "AES-NI"), after)
}

fn fig16() -> String {
    let study = aes_ni_cache1();
    let freed = study.scenario.estimate().freed_cycle_fraction(&study.scenario.params);
    let mut out = stacked_bars(
        "Fig 16: Cache1 functionalities with and without AES-NI",
        &fig16_rows(),
        60,
    );
    out.push_str(&format!("cycles freed by AES-NI: {:.1}%\n", freed * 100.0));
    out
}

fn fig17_rows() -> Rows {
    let study = encryption_cache3();
    let after = accelerated_split(
        ServiceId::Cache3,
        FunctionalityCategory::SecureInsecureIo,
        study.scenario.params.kernel_fraction(),
        &study.scenario,
        FunctionalityCategory::SecureInsecureIo,
    );
    before_after_rows(ServiceId::Cache3, ("No acc.", "Encryption acc."), after)
}

fn fig17() -> String {
    stacked_bars(
        "Fig 17: Cache3 functionalities with and without encryption acceleration",
        &fig17_rows(),
        60,
    )
}

fn fig18_rows() -> Rows {
    let study = inference_ads1();
    let after = accelerated_split(
        ServiceId::Ads1,
        FunctionalityCategory::PredictionRanking,
        study.scenario.params.kernel_fraction(),
        &study.scenario,
        // The extra offload I/O shows up as I/O cycles.
        FunctionalityCategory::SecureInsecureIo,
    );
    before_after_rows(ServiceId::Ads1, ("No Acc.", "Inference Acc."), after)
}

fn fig18() -> String {
    stacked_bars(
        "Fig 18: Ads1 functionalities with and without remote inference",
        &fig18_rows(),
        60,
    )
}

fn fig19() -> String {
    let rec = all_recommendations().remove(0); // Feed1 compression
    let mut markers = Vec::new();
    for cfg in &rec.configs {
        let ctx = OffloadContext::new(
            cfg.accelerator.overheads,
            cfg.accelerator.peak_speedup,
            cfg.design,
            cfg.accelerator.strategy,
        );
        let be = throughput_breakeven(&rec.profile.cost, &ctx);
        let g = match be {
            BreakEven::AtLeast(b) => b.get().max(1.0),
            BreakEven::Always => 1.0,
            BreakEven::Never => continue,
        };
        markers.push((format!("{} break-even ({g:.0} B)", cfg.label), g));
    }
    cdf_plot(
        "Fig 19: CDF of bytes compressed in Feed1 and Cache1",
        &[
            ("Feed1".to_owned(), cdf::feed1_compression().points().to_vec()),
            ("Cache1".to_owned(), cdf::cache1_compression().points().to_vec()),
        ],
        &markers,
        12,
    )
}

/// Fig. 20's bars: (overhead label, config label, speedup %, latency %).
#[must_use]
pub fn fig20_bars() -> Vec<(String, String, f64, f64)> {
    let mut bars = Vec::new();
    for rec in all_recommendations() {
        bars.push((rec.name.to_owned(), "Ideal".to_owned(), rec.paper_ideal_percent, rec.paper_ideal_percent));
        for cfg in &rec.configs {
            let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy)
                .expect("static recommendation parameters are valid");
            bars.push((
                rec.name.to_owned(),
                cfg.label.to_owned(),
                p.estimate.throughput_gain_percent(),
                p.estimate.latency_gain_percent(),
            ));
        }
    }
    bars
}

fn fig20_json() -> Value {
    json!(fig20_bars()
        .iter()
        .map(|(overhead, config, speedup, latency)| {
            json!({"overhead": overhead, "config": config, "speedup_percent": speedup, "latency_percent": latency})
        })
        .collect::<Vec<_>>())
}

fn fig20() -> String {
    let bars = fig20_bars();
    let mut groups: Vec<(String, Vec<f64>)> = Vec::new();
    let mut series: Vec<String> = Vec::new();
    for (overhead, config, speedup, _) in &bars {
        if !series.contains(config) {
            series.push(config.clone());
        }
        match groups.iter_mut().find(|(name, _)| name == overhead) {
            Some((_, values)) => values.push(*speedup),
            None => groups.push((overhead.clone(), vec![*speedup])),
        }
    }
    let series_refs: Vec<&str> = series.iter().map(String::as_str).collect();
    // Pad groups missing later series (copy/alloc have only Ideal+On-chip).
    for (_, values) in &mut groups {
        while values.len() < series_refs.len() {
            values.push(0.0);
        }
    }
    let mut out = grouped_bars(
        "Fig 20: Accelerometer-projected speedup for key overheads (%)",
        &series_refs,
        &groups,
        20.0,
        40,
    );
    out.push_str("(zero bars = configuration not applicable, shown as NA in the paper)\n");
    out
}

fn copy_cdf_series() -> Vec<(String, Vec<(f64, f64)>)> {
    ServiceId::CHARACTERIZED
        .iter()
        .map(|&id| (id.to_string(), cdf::memory_copy(id).points().to_vec()))
        .collect()
}

fn fig21() -> String {
    cdf_plot(
        "Fig 21: CDF of memory-copy sizes across microservices",
        &copy_cdf_series(),
        &[("Ads1 on-chip break-even (~1 B: all copies lucrative)".to_owned(), 1.0)],
        12,
    )
}

fn alloc_cdf_series() -> Vec<(String, Vec<(f64, f64)>)> {
    ServiceId::CHARACTERIZED
        .iter()
        .map(|&id| (id.to_string(), cdf::memory_allocation(id).points().to_vec()))
        .collect()
}

fn fig22() -> String {
    cdf_plot(
        "Fig 22: CDF of memory-allocation sizes across microservices",
        &alloc_cdf_series(),
        &[("Cache1 on-chip break-even (~1 B: all allocations lucrative)".to_owned(), 1.0)],
        12,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        for id in FIGURE_IDS {
            let text = figure(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(text.contains("=="), "{id} lacks a title");
            assert!(text.len() > 100, "{id} suspiciously short");
        }
        assert!(figure("fig99").is_none());
    }

    #[test]
    fn figure_json_for_data_figures() {
        for id in FIGURE_IDS {
            if matches!(id, "fig11" | "fig12" | "fig13" | "fig14") {
                assert!(figure_json(id).is_none(), "{id} timelines have no JSON");
            } else {
                let value = figure_json(id).unwrap_or_else(|| panic!("{id} missing json"));
                assert!(!value.as_array().unwrap().is_empty(), "{id} empty json");
            }
        }
    }

    #[test]
    fn fig1_shows_web_at_18_percent_core() {
        let rows = fig1_rows();
        let web = &rows[0];
        assert_eq!(web.0, "Web");
        assert_eq!(web.1[0].1, 18.0);
        assert_eq!(web.1[1].1, 82.0);
    }

    #[test]
    fn fig2_includes_reference_workloads() {
        let text = fig2();
        assert!(text.contains("Google [Kanev'15]"));
        assert!(text.contains("473.astar"));
        assert!(text.contains("Cache2"));
    }

    #[test]
    fn fig16_shows_secure_io_shrinking() {
        let rows = fig16_rows();
        let before = rows[0]
            .1
            .iter()
            .find(|(c, _)| c.contains("Secure"))
            .unwrap()
            .1;
        let after = rows[1]
            .1
            .iter()
            .find(|(c, _)| c.contains("Secure"))
            .unwrap()
            .1;
        // §4: AES-NI saves 12.8% of cycles; secure I/O share must shrink
        // markedly even after renormalization.
        assert!(after < before - 8.0, "before {before:.1}% after {after:.1}%");
        // Other categories grow in relative share.
        let app_before = rows[0].1.iter().find(|(c, _)| c.contains("Application")).unwrap().1;
        let app_after = rows[1].1.iter().find(|(c, _)| c.contains("Application")).unwrap().1;
        assert!(app_after > app_before);
    }

    #[test]
    fn fig18_frees_all_inference_cycles() {
        let rows = fig18_rows();
        // After remote offload, the Prediction/Ranking bar disappears.
        assert!(rows[0].1.iter().any(|(c, _)| c.contains("Prediction")));
        assert!(!rows[1].1.iter().any(|(c, _)| c.contains("Prediction")));
        // And I/O grows (extra offload I/O cycles).
        let io_before = rows[0].1.iter().find(|(c, _)| c.contains("Secure")).unwrap().1;
        let io_after = rows[1].1.iter().find(|(c, _)| c.contains("Secure")).unwrap().1;
        assert!(io_after > io_before);
    }

    #[test]
    fn fig20_matches_paper_projections() {
        let bars = fig20_bars();
        let find = |overhead: &str, config: &str| {
            bars.iter()
                .find(|(o, c, _, _)| o.contains(overhead) && c == config)
                .unwrap_or_else(|| panic!("{overhead}/{config} missing"))
        };
        assert!((find("Compression", "On-chip").2 - 13.6).abs() < 0.1);
        assert!((find("Compression", "Off-chip:Sync").2 - 9.0).abs() < 0.3);
        assert!((find("Compression", "Off-chip:Sync-OS").2 - 1.6).abs() < 0.2);
        assert!((find("Compression", "Off-chip:Async").2 - 9.6).abs() < 0.3);
        assert!((find("Memory copy", "On-chip").2 - 12.7).abs() < 0.15);
        assert!((find("Memory allocation", "On-chip").2 - 1.86).abs() < 0.05);
        assert!((find("Compression", "Ideal").2 - 17.6).abs() < 0.1);
    }

    #[test]
    fn fig19_markers_match_section_5() {
        let text = fig19();
        assert!(text.contains("425 B"), "{text}");
        assert!(text.contains("2456 B") || text.contains("2455 B"), "{text}");
        assert!(text.contains("409 B"), "{text}");
    }

    #[test]
    fn timelines_render_three_lanes() {
        for id in ["fig11", "fig12", "fig13", "fig14"] {
            let text = figure(id).unwrap();
            assert!(text.contains("host"));
            assert!(text.contains("accelerator"));
            assert!(text.contains("legend"));
        }
    }
}
