//! An extra (non-paper) figure: the A × L design space as an ASCII
//! heatmap — where in (peak speedup, interface latency) space an
//! accelerator for a given kernel pays off, per threading design.
//!
//! This is the capacity-planning view §3's "trade-offs between various
//! acceleration strategies" paragraph gestures at: every candidate
//! device is a point in this plane; the heatmap shows its iso-speedup
//! region before anyone tapes anything out.

use accelerometer::exec::ExecPool;
use accelerometer::sweep::log_space;
use accelerometer::{
    estimate, AccelerationStrategy, DriverMode, ModelParams, ThreadingDesign,
};

/// One cell of the design-space grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// `A`: peak accelerator speedup.
    pub peak_speedup: f64,
    /// `L`: interface latency in cycles.
    pub interface_latency: f64,
    /// Projected throughput gain (percent; negative = slowdown).
    pub gain_percent: f64,
}

/// Evaluates the A × L grid for a kernel with fraction `alpha` and `n`
/// offloads per `c` host cycles, under `design`.
#[must_use]
pub fn grid(
    c: f64,
    alpha: f64,
    n: f64,
    design: ThreadingDesign,
    a_values: &[f64],
    l_values: &[f64],
) -> Vec<Vec<DesignPoint>> {
    // One pool job per grid row: each cell is a pure model evaluation, so
    // rows parallelize freely and land in `a_values` order.
    ExecPool::default().map(a_values, |_, &a| {
            l_values
                .iter()
                .map(|&l| {
                    let params = ModelParams::builder()
                        .host_cycles(c)
                        .kernel_fraction(alpha)
                        .offloads(n)
                        .interface_cycles(l)
                        .thread_switch_cycles(2_000.0)
                        .peak_speedup(a)
                        .build()
                        .expect("grid parameters are valid");
                    let est = estimate(
                        &params,
                        design,
                        AccelerationStrategy::OffChip,
                        DriverMode::AwaitsAck,
                    );
                    DesignPoint {
                        peak_speedup: a,
                        interface_latency: l,
                        gain_percent: est.throughput_gain_percent(),
                    }
                })
                .collect()
    })
}

fn glyph(gain: f64, ideal: f64) -> char {
    // Fraction of the ideal gain realized.
    let fraction = gain / ideal;
    match fraction {
        f if f < 0.0 => 'x',  // slowdown
        f if f < 0.25 => '.',
        f if f < 0.5 => '-',
        f if f < 0.75 => '=',
        f if f < 0.9 => '#',
        _ => '@',
    }
}

/// Renders the design space for a kernel under one threading design.
#[must_use]
pub fn render(c: f64, alpha: f64, n: f64, design: ThreadingDesign) -> String {
    use std::fmt::Write as _;
    let a_values: Vec<f64> = log_space(1.5, 96.0, 13);
    let l_values: Vec<f64> = log_space(10.0, 1_000_000.0, 46);
    let cells = grid(c, alpha, n, design, &a_values, &l_values);
    let ideal = (1.0 / (1.0 - alpha) - 1.0) * 100.0;

    let mut out = format!(
        "== Design space: {design} offload of a {:.0}% kernel, n = {n:.0} (ideal {ideal:+.1}%) ==\n",
        alpha * 100.0
    );
    let _ = writeln!(out, "{:>7}   10 cycles -> 1M cycles (log)", "A \\ L");
    for (row, &a) in cells.iter().zip(&a_values).rev() {
        let line: String = row.iter().map(|p| glyph(p.gain_percent, ideal)).collect();
        let _ = writeln!(out, "{a:>7.1}  |{line}|");
    }
    let _ = writeln!(
        out,
        "legend: @ >=90% of ideal  # >=75%  = >=50%  - >=25%  . <25%  x slowdown"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 2.3e9;
    const ALPHA: f64 = 0.15;
    const N: f64 = 15_008.0;

    #[test]
    fn gain_is_monotone_in_the_grid() {
        let a_values = [2.0, 8.0, 32.0];
        let l_values = [100.0, 10_000.0, 1_000_000.0];
        let cells = grid(C, ALPHA, N, ThreadingDesign::Sync, &a_values, &l_values);
        // Rows: fixed A, gain falls with L.
        for row in &cells {
            for pair in row.windows(2) {
                assert!(pair[1].gain_percent <= pair[0].gain_percent + 1e-9);
            }
        }
        // Columns: fixed L, gain rises with A.
        for col in 0..l_values.len() {
            for rows in cells.windows(2) {
                assert!(rows[1][col].gain_percent >= rows[0][col].gain_percent - 1e-9);
            }
        }
    }

    #[test]
    fn high_latency_corner_is_a_slowdown_for_sync() {
        let cells = grid(C, ALPHA, N, ThreadingDesign::Sync, &[96.0], &[1_000_000.0]);
        assert!(cells[0][0].gain_percent < 0.0);
        // And the low-latency corner approaches the ideal.
        let cells = grid(C, ALPHA, N, ThreadingDesign::Sync, &[96.0], &[10.0]);
        assert!(cells[0][0].gain_percent > 15.0);
    }

    #[test]
    fn async_tolerates_more_latency_than_sync() {
        // At a moderate L, the async design keeps more of the gain.
        let l = 20_000.0;
        let sync = grid(C, ALPHA, N, ThreadingDesign::Sync, &[27.0], &[l])[0][0];
        let asynchronous =
            grid(C, ALPHA, N, ThreadingDesign::AsyncNoResponse, &[27.0], &[l])[0][0];
        assert!(asynchronous.gain_percent >= sync.gain_percent);
    }

    #[test]
    fn render_produces_a_full_heatmap() {
        let art = render(C, ALPHA, N, ThreadingDesign::Sync);
        assert!(art.contains("Design space"));
        assert!(art.contains('@'), "no near-ideal region:\n{art}");
        assert!(art.contains('x'), "no slowdown region:\n{art}");
        assert!(art.contains("legend"));
        assert_eq!(art.lines().count(), 16); // title + axis + 13 rows + legend
    }
}
