//! # accelerometer-bench
//!
//! The reproduction harness: regenerates every table (Tables 1–7) and
//! figure (Figs. 1–22) of the Accelerometer paper from this repository's
//! model, datasets, profiler, and simulator.
//!
//! * `cargo run -p accelerometer-bench --bin tables -- all`
//! * `cargo run -p accelerometer-bench --bin figures -- fig20`
//! * `cargo run -p accelerometer-bench --bin figures -- fig19 --json`
//!
//! Criterion micro-benchmarks live under `benches/`: kernel benchmarks
//! that re-derive the model's `Cb`/`A` parameters the way §4's
//! methodology prescribes, model-evaluation benchmarks, and simulator
//! throughput benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod design_space;
pub mod figures;
pub mod jobs;
pub mod render;
pub mod tables;

pub use figures::{figure, figure_json, FIGURE_IDS};
pub use accelerometer_fleet::apply_services_flag;
pub use jobs::apply_jobs_flag;
pub use tables::{render_table, TABLE_IDS};
