//! Shared `--jobs N` flag handling for the regeneration binaries.

use accelerometer_sim::parallel::{available_jobs, set_default_jobs};

/// Strips a `--jobs N` flag from `args` and installs `N` as the
/// process-wide default worker count. Without the flag, the default
/// stays at the machine's available parallelism.
///
/// # Errors
///
/// Returns a message when `--jobs` is present without a positive
/// integer value.
pub fn apply_jobs_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(());
    };
    let value = args
        .get(i + 1)
        .ok_or_else(|| "--jobs requires a value (worker thread count)".to_owned())?;
    let jobs: usize = value
        .parse()
        .map_err(|_| format!("--jobs expects a positive integer, got {value:?}"))?;
    if jobs == 0 {
        return Err("--jobs expects a positive integer, got 0".to_owned());
    }
    args.drain(i..=i + 1);
    set_default_jobs(jobs);
    Ok(())
}

/// The help text fragment describing the flag.
#[must_use]
pub fn jobs_usage() -> String {
    format!(
        "--jobs N   worker threads for independent runs (default: {}; results \
         are identical at any N)",
        available_jobs()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_flag_and_value() {
        let mut args = vec!["table6".to_owned(), "--jobs".to_owned(), "2".to_owned()];
        apply_jobs_flag(&mut args).unwrap();
        assert_eq!(args, vec!["table6".to_owned()]);
        // Restore the global for other tests.
        set_default_jobs(0);
    }

    #[test]
    fn rejects_missing_and_bad_values() {
        let mut args = vec!["--jobs".to_owned()];
        assert!(apply_jobs_flag(&mut args).is_err());
        let mut args = vec!["--jobs".to_owned(), "zero".to_owned()];
        assert!(apply_jobs_flag(&mut args).is_err());
        let mut args = vec!["--jobs".to_owned(), "0".to_owned()];
        assert!(apply_jobs_flag(&mut args).is_err());
    }

    #[test]
    fn absent_flag_is_a_no_op() {
        let mut args = vec!["all".to_owned()];
        apply_jobs_flag(&mut args).unwrap();
        assert_eq!(args, vec!["all".to_owned()]);
    }
}
