//! Golden-output tests: the bit-exactness gate for engine refactors.
//!
//! One small load sweep, one case study, and one ablation run at fixed
//! seeds, serialized to JSON and compared *byte-for-byte* against
//! checked-in fixtures. Any engine change that perturbs event order,
//! request accounting, RNG consumption, or floating-point evaluation
//! order shows up here as a diff — which is exactly the point: the
//! PR-2 event-queue/slab/percentile overhaul (and every future one)
//! must leave these files untouched.
//!
//! To regenerate after an *intentional* output change, run with
//! `GOLDEN_BLESS=1` and commit the updated fixtures:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test -p accelerometer-bench --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use accelerometer::units::cycles_per_byte;
use accelerometer::{AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign};
use accelerometer_bench::ablations::queueing_sensitivity_with;
use accelerometer_fleet::params::aes_ni_cache1;
use accelerometer_sim::parallel::ExecPool;
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{
    concurrency_sweep_with, simulate, DeviceKind, OffloadConfig, SimConfig,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the named fixture, or rewrites the fixture
/// when `GOLDEN_BLESS=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with GOLDEN_BLESS=1", name));
    assert_eq!(
        expected, actual,
        "golden output drifted for {name}; if the change is intentional, \
         regenerate with GOLDEN_BLESS=1 and commit the new fixture"
    );
}

fn sweep_base() -> SimConfig {
    SimConfig {
        cores: 2,
        threads: 2,
        context_switch_cycles: 400.0,
        horizon: 1e7,
        seed: 20_260_806,
        workload: WorkloadSpec {
            non_kernel_cycles: 4_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)])
                .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(2.0),
        },
        offload: Some(OffloadConfig {
            design: ThreadingDesign::SyncOs,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::Posted,
            device: DeviceKind::Shared { servers: 2 },
            peak_speedup: 4.0,
            interface_latency: 8_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: Some(128.0),
        }),
        fault: Default::default(),
        recovery: Default::default(),
    }
}

#[test]
fn load_sweep_matches_golden_fixture() {
    let sweep = concurrency_sweep_with(&ExecPool::new(1), &sweep_base(), &[1, 2, 4, 8, 16]);
    let json = serde_json::to_string(&sweep).expect("sweep serializes");
    assert_golden("golden_load_sweep.json", &json);
}

#[test]
fn case_study_matches_golden_fixture() {
    let (validation, ab) = simulate(&aes_ni_cache1(), 42).expect("known case study");
    let json = format!(
        "{{\"validation\":{},\"ab\":{}}}",
        serde_json::to_string(&validation).expect("validation serializes"),
        serde_json::to_string(&ab).expect("ab serializes"),
    );
    assert_golden("golden_case_study.json", &json);
}

#[test]
fn queueing_ablation_matches_golden_fixture() {
    let rows = queueing_sensitivity_with(&ExecPool::new(1), 20_260_806);
    let json = serde_json::to_string(&rows).expect("rows serialize");
    assert_golden("golden_ablation.json", &json);
}
