//! The PR's headline guarantee, end to end: running experiment batches
//! at `--jobs 1` and `--jobs 8` produces byte-identical serialized
//! results. Each experiment's RNG seed travels in its config, the pool
//! reassembles results by index, and serde's output is byte-stable, so
//! the serialized JSON must match exactly — not approximately.

use accelerometer::units::cycles_per_byte;
use accelerometer::{
    AccelerationStrategy, DriverMode, GranularityCdf, ThreadingDesign,
};
use accelerometer_bench::ablations::queueing_sensitivity_with;
use accelerometer_sim::parallel::ExecPool;
use accelerometer_sim::workload::WorkloadSpec;
use accelerometer_sim::{
    concurrency_sweep_with, validate_all_with, DeviceKind, OffloadConfig, SimConfig,
};

fn sweep_base() -> SimConfig {
    SimConfig {
        cores: 2,
        threads: 2,
        context_switch_cycles: 400.0,
        horizon: 1e7,
        seed: 20_260_806,
        workload: WorkloadSpec {
            non_kernel_cycles: 4_000.0,
            kernels_per_request: 1,
            granularity: GranularityCdf::from_points(vec![(256.0, 0.4), (1_024.0, 1.0)])
                .expect("valid CDF"),
            cycles_per_byte: cycles_per_byte(2.0),
        },
        offload: Some(OffloadConfig {
            design: ThreadingDesign::SyncOs,
            strategy: AccelerationStrategy::OffChip,
            driver: DriverMode::Posted,
            device: DeviceKind::Shared { servers: 2 },
            peak_speedup: 4.0,
            interface_latency: 8_000.0,
            setup_cycles: 50.0,
            dispatch_pollution: 0.0,
            min_offload_bytes: None,
        }),
        fault: Default::default(),
        recovery: Default::default(),
    }
}

#[test]
fn load_sweep_is_byte_identical_across_pool_widths() {
    let counts = [1usize, 2, 4, 8, 16];
    let one = concurrency_sweep_with(&ExecPool::new(1), &sweep_base(), &counts);
    let eight = concurrency_sweep_with(&ExecPool::new(8), &sweep_base(), &counts);
    let one_json = serde_json::to_string(&one).expect("sweep serializes");
    let eight_json = serde_json::to_string(&eight).expect("sweep serializes");
    assert_eq!(one_json, eight_json);
    // The skipped sub-core count is present in both.
    assert_eq!(one.skipped, vec![1]);
    assert!(one_json.contains("skipped"));
}

#[test]
fn queueing_ablation_is_byte_identical_across_pool_widths() {
    let seed = 20_260_806;
    let one = queueing_sensitivity_with(&ExecPool::new(1), seed);
    let eight = queueing_sensitivity_with(&ExecPool::new(8), seed);
    let one_json = serde_json::to_string(&one).expect("rows serialize");
    let eight_json = serde_json::to_string(&eight).expect("rows serialize");
    assert_eq!(one_json, eight_json);
    assert_eq!(one.len(), 4);
}

#[test]
fn table6_validation_is_byte_identical_across_pool_widths() {
    let seed = 20_260_706;
    let one = validate_all_with(&ExecPool::new(1), seed);
    let eight = validate_all_with(&ExecPool::new(8), seed);
    assert_eq!(
        serde_json::to_string(&one).expect("validations serialize"),
        serde_json::to_string(&eight).expect("validations serialize"),
    );
    assert_eq!(one.len(), 3);
}
