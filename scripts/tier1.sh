#!/usr/bin/env sh
# Tier-1 gate: everything a PR must keep green.
#   build + full test suite + clippy (deny warnings) + a --jobs smoke run.
# Usage: scripts/tier1.sh   (from the repo root)
# Opt-in: BENCH_REGRESS=1 additionally runs scripts/bench_regress.sh
# (off by default — shared-container wall clock is too noisy to block
# every commit on it).
set -eu

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== kernels tests, forced-scalar tier (KERNELS_FORCE_SCALAR=1) =="
# The workspace run above exercises auto ISA dispatch (whatever the host
# exposes: AES-NI, SHA-NI, AVX2, ...). This second run pins every kernel
# to its scalar reference path through the same public entry points, so
# both dispatch tiers — and the env-var plumbing itself — stay covered
# by the same equivalence suite.
KERNELS_FORCE_SCALAR=1 cargo test -q -p accelerometer-kernels

echo "== clippy (deny warnings, release) =="
# Release profile so lint analysis sees the same cfg/codegen surface the
# perf-sensitive release builds use (and shares the build cache with the
# release build above).
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== --jobs smoke: tables table6 at widths 1 and 2 must match byte-for-byte =="
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
./target/release/tables --jobs 1 table6 > "$out_dir/j1.txt"
./target/release/tables --jobs 2 table6 > "$out_dir/j2.txt"
cmp "$out_dir/j1.txt" "$out_dir/j2.txt"

echo "== faults smoke: accelctl faults at widths 1 and 2 must match the committed fixture =="
./target/release/accelctl --jobs 1 faults > "$out_dir/faults_j1.json"
./target/release/accelctl --jobs 2 faults > "$out_dir/faults_j2.json"
cmp "$out_dir/faults_j1.json" "$out_dir/faults_j2.json"
# The binary appends a trailing newline to the report; the fixture
# stores the bare JSON string.
printf '\n' | cat crates/cli/tests/fixtures/golden_faults.json - > "$out_dir/faults_expected.json"
cmp "$out_dir/faults_expected.json" "$out_dir/faults_j1.json"

echo "== shards smoke: accelctl --shards 1 and 4 must match the committed sharded fixture =="
# The shard decomposition is derived from the configuration, so the
# worker width can only change wall-clock time, never a byte of output.
./target/release/accelctl --shards 1 faults > "$out_dir/faults_s1.json"
./target/release/accelctl --shards 4 faults > "$out_dir/faults_s4.json"
cmp "$out_dir/faults_s1.json" "$out_dir/faults_s4.json"
printf '\n' | cat crates/cli/tests/fixtures/golden_faults_sharded.json - > "$out_dir/faults_sharded_expected.json"
cmp "$out_dir/faults_sharded_expected.json" "$out_dir/faults_s1.json"

echo "== heavy-fallback smoke: fallback slices must conserve core capacity at any shard width =="
# configs/faults-heavy-fallback.json drives 60% of offload attempts into
# the fault path with a one-retry + fallback-to-host policy: over a
# third of all kernels re-execute on the host. Those re-executions are
# real scheduled slices, so (a) core_utilization must stay <= 1 for
# every policy — the old phantom accounting pushed it past 1 — and
# (b) the report must be byte-identical whether the simulation runs
# monolithically or sharded 4 ways.
./target/release/accelctl --shards 1 faults configs/faults-heavy-fallback.json > "$out_dir/faults_heavy_s1.json"
./target/release/accelctl --shards 4 faults configs/faults-heavy-fallback.json > "$out_dir/faults_heavy_s4.json"
cmp "$out_dir/faults_heavy_s1.json" "$out_dir/faults_heavy_s4.json"
grep '"fallbacks"' "$out_dir/faults_heavy_s1.json" | awk -F': ' \
    '{ gsub(/,/, "", $2); total += $2 } END { if (total < 1000) { print "heavy-fallback smoke: expected >= 1000 fallbacks, got " total; exit 1 } }'
grep '"core_utilization"' "$out_dir/faults_heavy_s1.json" | awk -F': ' \
    '{ gsub(/,/, "", $2); if ($2 + 0.0 > 1.0) { print "core_utilization " $2 " exceeds 1.0"; exit 1 } }'

echo "== trace-reuse smoke: accelctl faults with reuse on and off must match byte-for-byte =="
# Cross-point frozen-trace reuse replays pre-drawn requests instead of
# redrawing them at every sweep grid point; the toggle must be
# unobservable in output bytes (sharded too, where each shard adopts a
# trace for its derived seed).
./target/release/accelctl --trace-reuse on faults > "$out_dir/faults_reuse_on.json"
./target/release/accelctl --trace-reuse off faults > "$out_dir/faults_reuse_off.json"
cmp "$out_dir/faults_reuse_on.json" "$out_dir/faults_reuse_off.json"
cmp "$out_dir/faults_expected.json" "$out_dir/faults_reuse_on.json"

echo "== isa smoke: accelctl --isa scalar and auto must match byte-for-byte =="
# ISA dispatch may only change kernel wall-clock, never an output byte;
# pinning the scalar tier through the CLI must be unobservable in any
# deterministic command's output.
./target/release/accelctl --isa scalar faults > "$out_dir/faults_isa_scalar.json"
./target/release/accelctl --isa auto faults > "$out_dir/faults_isa_auto.json"
cmp "$out_dir/faults_isa_scalar.json" "$out_dir/faults_isa_auto.json"
cmp "$out_dir/faults_expected.json" "$out_dir/faults_isa_scalar.json"

echo "== services gate: every shipped profile pack must parse and validate =="
# A malformed configs/services/*.json (breakdown off 100%, non-monotone
# CDF, negative IPC/rate, wrong filename) fails this command with a
# structured error and breaks the gate.
./target/release/accelctl services validate configs/services

echo "== services smoke: data-driven profiles must be byte-identical to the builtins =="
# The load-bearing equivalence of the data-path refactor: every runner
# driven through --services configs/services must reproduce the
# hard-wired constructors' output byte-for-byte, including against the
# committed golden fixtures (which were NOT re-blessed for the data
# path).
./target/release/accelctl --services configs/services faults > "$out_dir/faults_svc.json"
cmp "$out_dir/faults_expected.json" "$out_dir/faults_svc.json"
./target/release/accelctl --services configs/services --shards 2 faults > "$out_dir/faults_svc_sharded.json"
cmp "$out_dir/faults_sharded_expected.json" "$out_dir/faults_svc_sharded.json"
./target/release/accelctl tables all > "$out_dir/tables_builtin.txt"
./target/release/accelctl --services configs/services tables all > "$out_dir/tables_svc.txt"
cmp "$out_dir/tables_builtin.txt" "$out_dir/tables_svc.txt"
./target/release/tables --services configs/services table6 > "$out_dir/t6_svc.txt"
cmp "$out_dir/j1.txt" "$out_dir/t6_svc.txt"

if [ "${BENCH_REGRESS:-0}" = "1" ]; then
    echo "== bench regression gate (opt-in) =="
    sh scripts/bench_regress.sh
fi

echo "tier1: OK"
