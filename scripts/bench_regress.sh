#!/bin/sh
# Benchmark regression gate: re-runs the recorded benches and fails if
# any benchmark's mean — raw and/or 10%-trimmed, whichever the committed
# record keeps — regresses more than the tolerance versus the committed
# BENCH_*.json record. Records that also keep a paired `before` array
# first get a before/after speedup table printed from the record itself,
# so the ratios cited in CHANGES.md are reproducible from one command.
#
# Usage: scripts/bench_regress.sh
#
# Knobs:
#   BENCH_REGRESS_TOLERANCE_PCT  allowed mean regression (default 15)
#   CRITERION_BUDGET_MS          per-benchmark budget (default 400, the
#                                budget the committed records used)
#
# Opt-in from tier1: BENCH_REGRESS=1 scripts/tier1.sh — the gate stays
# off the default tier-1 path because wall-clock on a shared 1-core
# container is too noisy to block commits unconditionally.
set -eu

cd "$(dirname "$0")/.."

TOLERANCE_PCT="${BENCH_REGRESS_TOLERANCE_PCT:-15}"
export CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-400}"

command -v jq >/dev/null 2>&1 || {
    echo "bench_regress: jq not found; cannot compare records" >&2
    exit 2
}

status=0
for record in BENCH_engine.json BENCH_parallel.json BENCH_kernels.json; do
    [ -f "$record" ] || {
        echo "bench_regress: missing record $record" >&2
        status=1
        continue
    }
    bench_name=$(basename "$record" .json | sed 's/^BENCH_//')
    # Records that carry a paired `before` array (measured in the same
    # session as `results`, per-side medians of trimmed means) get their
    # recorded speedup ratios re-derived and printed here, so the claims
    # in CHANGES.md reproduce from this one command instead of living
    # only in the record's summary block.
    if jq -e '.before? | length > 0' "$record" >/dev/null 2>&1; then
        echo "== $bench_name: recorded paired before/after ratios =="
        { jq -r '.before[] | "BASE\t\(.id)\t\(.trimmed_mean_ns // .mean_ns)"' "$record"
          jq -r '.results[] | "CUR\t\(.id)\t\(.trimmed_mean_ns // .mean_ns)"' "$record"
        } | awk -F'\t' '
            $1 == "BASE" { base[$2] = $3; order[n++] = $2; next }
            $1 == "CUR" { cur[$2] = $3 }
            END {
                printf "%-52s %14s %14s %9s\n", "benchmark", "before_ns", "after_ns", "speedup"
                for (i = 0; i < n; i++) {
                    id = order[i]
                    if (!(id in cur)) { printf "%-52s %14.0f %14s %9s\n", id, base[id], "-", "-"; continue }
                    printf "%-52s %14.0f %14.0f %8.2fx\n", id, base[id], cur[id], base[id] / cur[id]
                }
            }'
    fi
    echo "== $bench_name: re-running (budget ${CRITERION_BUDGET_MS} ms, tolerance ${TOLERANCE_PCT}%) =="
    out=$(cargo bench -q -p accelerometer-bench --bench "$bench_name" 2>/dev/null | grep '^BENCHJSON ' | sed 's/^BENCHJSON //')
    if [ -z "$out" ]; then
        echo "bench_regress: bench $bench_name produced no BENCHJSON output" >&2
        status=1
        continue
    fi
    # ISA guard: a committed record measured with (say) AES-NI+AVX2 and
    # a fresh run forced scalar — or taken on a host without those
    # features — are measurements of different machines, not a
    # regression signal. Refuse to compare rather than emit a bogus
    # verdict. Records that predate the isa field ("unrecorded") are
    # compared as before.
    committed_isa=$(jq -r '.results[0].isa // .environment.isa // "unrecorded"' "$record")
    fresh_isa=$(printf '%s\n' "$out" | head -n 1 | jq -r '.isa // "unrecorded"')
    if [ "$committed_isa" != "unrecorded" ] && [ "$committed_isa" != "$fresh_isa" ]; then
        echo "bench_regress: $bench_name ISA mismatch — record taken with '$committed_isa', this run dispatches '$fresh_isa'" >&2
        echo "bench_regress: refusing to compare timings across instruction sets; re-record on this host or align KERNELS_FORCE_SCALAR" >&2
        status=1
        continue
    fi
    # Join committed and fresh results by id, then let awk render the
    # readable diff and flag regressions beyond tolerance. Each mean the
    # committed record keeps — raw, 10%-trimmed, or both — is gated
    # against the fresh run's counterpart: the trimmed mean is the
    # robust number on a noisy shared host; older records carried only
    # the raw mean, newer ones only the trimmed. "-" marks a side (or
    # column) without that mean.
    committed=$(jq -r '.results[] | "BASE\t\(.id)\t\(.mean_ns // "-")\t\(.trimmed_mean_ns // "-")"' "$record")
    fresh=$(printf '%s\n' "$out" | jq -r '"CUR\t\(.id)\t\(.mean_ns)\t\(.trimmed_mean_ns // "-")"')
    report=$(printf '%s\n%s\n' "$committed" "$fresh" | awk -F'\t' -v tol="$TOLERANCE_PCT" '
        $1 == "BASE" { base[$2] = $3; base_tr[$2] = $4; order[n++] = $2; next }
        $1 == "CUR" { cur[$2] = $3; cur_tr[$2] = $4 }
        END {
            fail = 0
            printf "%-52s %14s %14s %9s %10s\n", "benchmark", "recorded_ns", "current_ns", "delta", "trim_delta"
            for (i = 0; i < n; i++) {
                id = order[i]
                if (!(id in cur)) { printf "%-52s %14s %14s %9s %10s  MISSING\n", id, base[id], "-", "-", "-"; fail = 1; continue }
                flag = ""
                delta_col = "-"
                if (base[id] != "-") {
                    delta = (cur[id] / base[id] - 1) * 100
                    delta_col = sprintf("%+8.1f%%", delta)
                    if (delta > tol) { flag = "  REGRESSED"; fail = 1 }
                }
                trim_col = "-"
                if (base_tr[id] != "-" && cur_tr[id] != "-") {
                    trim_delta = (cur_tr[id] / base_tr[id] - 1) * 100
                    trim_col = sprintf("%+9.1f%%", trim_delta)
                    if (trim_delta > tol) { flag = "  REGRESSED(trimmed)"; fail = 1 }
                }
                printf "%-52s %14s %14.0f %9s %10s%s\n", id, base[id], cur[id], delta_col, trim_col, flag
            }
            exit fail
        }') || status=1
    printf '%s\n' "$report"
done

if [ "$status" -ne 0 ]; then
    echo "bench_regress: FAIL — at least one mean regressed > ${TOLERANCE_PCT}% (or a record/benchmark is missing)" >&2
    echo "If the regression is intentional, re-record with:" >&2
    echo "  CRITERION_BUDGET_MS=400 cargo bench -p accelerometer-bench --bench <name>  # then update BENCH_<name>.json" >&2
    exit 1
fi
echo "bench_regress: OK — no mean regressed more than ${TOLERANCE_PCT}%"
