//! Minimal offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are used by this
//! workspace; since Rust 1.63 the standard library provides scoped
//! threads natively, so the stub is a thin adapter over
//! [`std::thread::scope`] that preserves crossbeam's call shape
//! (`scope(|s| ...)` returning a `Result`, and spawn closures that
//! receive `&Scope`).
//!
//! Divergence from upstream: a panicking child thread propagates the
//! panic out of `scope` (std behaviour) instead of surfacing it as
//! `Err`. Callers in this workspace immediately `.expect()` the result,
//! so both behaviours terminate identically.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped thread spawning, crossbeam-style.

    use std::any::Any;

    /// A scope handle; threads spawned through it are joined before
    /// [`scope`] returns.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope itself so it can spawn further threads, matching
        /// crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; all of them are joined before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this stub: child panics propagate as
    /// panics (see the crate docs).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 10))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope succeeds");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            let outer = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().expect("inner ok") * 2
            });
            outer.join().expect("outer ok")
        })
        .expect("scope succeeds");
        assert_eq!(n, 42);
    }
}
