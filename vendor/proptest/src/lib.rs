//! Minimal offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Provides the `proptest!` macro, `Strategy` combinators, and the
//! `prop::{collection, array, sample}` helpers this workspace's
//! property tests use. Two deliberate simplifications versus upstream:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs —
//!   upstream's persistence files are unnecessary.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;

    /// Types with a canonical strategy over their whole value space.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// A strategy producing any value of `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;

                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }

    impl Arbitrary for crate::sample::Index {
        type Strategy = crate::sample::AnyIndex;

        fn arbitrary() -> Self::Strategy {
            crate::sample::AnyIndex
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let len = self.len.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 16]`.
    #[derive(Debug, Clone)]
    pub struct Uniform16<S>(S);

    /// Generates arrays of 16 elements from `strategy`.
    pub fn uniform16<S: Strategy>(strategy: S) -> Uniform16<S> {
        Uniform16(strategy)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

pub mod sample {
    //! Sampling from explicit collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options` (cloning the picked element).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }

    /// An index into a collection whose length is unknown at
    /// generation time; resolved against a concrete length later.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves to a concrete index in `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy for [`Index`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, glob-importable.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs a block of property tests. Mirrors upstream's surface:
/// an optional `#![proptest_config(...)]` header followed by `fn`
/// items whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run!(
                ($config)
                (concat!(module_path!(), "::", stringify!($name)))
                ( $($params)* )
                $body
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ( ($config:expr) ($test_name:expr) ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block ) => {{
        let __config: $crate::test_runner::Config = $config;
        let mut __rng = $crate::test_runner::TestRng::for_test($test_name);
        for __case in 0..__config.cases {
            $(
                let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
            )+
            let __outcome: ::std::result::Result<(), ::std::string::String> =
                (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(__message) = __outcome {
                ::std::panic!(
                    "proptest case {}/{} failed: {}",
                    __case + 1,
                    __config.cases,
                    __message
                );
            }
        }
    }};
}

/// Fails the enclosing property test if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property test if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the enclosing property test if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Chooses uniformly between several strategies producing the same
/// value type. (Upstream's weighted form is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $( $crate::strategy::OneOf::option($strategy) ),+
        ])
    };
}
