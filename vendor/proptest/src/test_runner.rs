//! Test configuration and the deterministic RNG behind strategies.

/// Number of cases each property test runs; mirrors
/// `proptest::test_runner::Config` (aliased to `ProptestConfig` in the
/// prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on the
        // single-core CI box while still exercising the value space.
        Config { cases: 64 }
    }
}

/// Deterministic RNG (xoshiro256++) seeded from the test's name, so
/// every run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test identifier (module path + test name).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = hash;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
