//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `BoxedStrategy` is `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies of the same value type;
/// built by the `prop_oneof!` macro.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from pre-boxed alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { options }
    }

    /// Boxes one alternative (coercion helper for the macro).
    pub fn option(strategy: impl Strategy<Value = T> + 'static) -> BoxedStrategy<T> {
        Box::new(strategy)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
