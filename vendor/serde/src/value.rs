//! The JSON value tree both traits convert through.

use std::fmt;

/// A JSON number. Integers and floats are kept distinct so that `u64`
/// counters round-trip exactly and print without a decimal point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A double-precision float.
    F64(f64),
}

impl Number {
    /// The numeric value as an `f64` (lossy for huge integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as a `u64` if it is a non-negative integer (floats
    /// with zero fractional part qualify).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) => {
                if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
                    Some(n as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as an `i64` if it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) => {
                if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 {
                    Some(n as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(n) => {
                if n.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float repr,
                    // matching serde_json's ryu output (`1.0`, not `1`).
                    write!(f, "{n:?}")
                } else {
                    // Real serde_json refuses non-finite floats; the
                    // stub degrades to null like JavaScript's JSON.
                    f.write_str("null")
                }
            }
        }
    }
}

/// A JSON value. Objects preserve insertion order (entry list, not a
/// map), which keeps serialized artifacts byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `f64` if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value's object entries if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `key` in an object (None for other shapes or a
    /// missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Renders with two-space indentation, matching
    /// `serde_json::to_string_pretty`'s layout.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
