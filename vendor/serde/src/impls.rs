//! Trait impls for primitives and std containers.

use crate::value::{Number, Value};
use crate::{DeError, Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::F64(f64::from(*self)))
            }
        }
    )*};
}

serialize_float!(f32, f64);

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}

serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {v}")))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new(format!("expected string, got {v}")))
    }
}

/// `&'static str` appears in a few derived containers; serialization
/// works (it is just a string), deserialization cannot fabricate a
/// static lifetime and reports an error instead.
impl Deserialize for &'static str {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Err(DeError::new(format!(
            "cannot deserialize into &'static str (value {v})"
        )))
    }
}

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {v}")))
            }
        }
    )*};
}

deserialize_float!(f32, f64);

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(format!("expected integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr => $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::new(format!("expected array, got {v}")))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected array of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}

deserialize_tuple! {
    (2 => A.0, B.1)
    (3 => A.0, B.1, C.2)
    (4 => A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

/// Maps serialize as arrays of `[key, value]` pairs (JSON objects only
/// admit string keys, and this workspace uses composite keys). Entries
/// are sorted by serialized key so artifacts are byte-stable across
/// runs despite `HashMap`'s randomized iteration order.
impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = k.to_json_value();
                (key.to_string(), Value::Array(vec![key, v.to_json_value()]))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(entries.into_iter().map(|(_, pair)| pair).collect())
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array of map entries, got {v}")))?
            .iter()
            .map(<(K, V)>::from_json_value)
            .collect()
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_json_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array of map entries, got {v}")))?
            .iter()
            .map(<(K, V)>::from_json_value)
            .collect()
    }
}
