//! Minimal offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no registry access, so the workspace
//! vendors a drastically simplified serde: instead of the
//! visitor/deserializer architecture, both traits convert through a
//! single JSON-shaped [`Value`] tree. `serde_json` (also vendored)
//! parses and prints that tree, and `serde_derive` (also vendored)
//! generates these trait impls for the container shapes this workspace
//! actually uses (named structs, tuple/newtype structs, and enums with
//! unit/newtype/struct variants, including `rename_all = "kebab-case"`,
//! `tag = "..."` internal tagging, `transparent`, and field `default`).
//!
//! The public *spelling* matches real serde closely enough that every
//! `use serde::{Deserialize, Serialize}` and derive in this workspace
//! compiles unchanged; the trait *methods* are different (and simpler),
//! which only matters to hand-written impls — of which this workspace
//! has none.

#![forbid(unsafe_code)]

mod error;
mod impls;
pub mod value;

pub use error::DeError;
pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be converted into a JSON [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_json_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first shape or type
    /// mismatch encountered.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field by key in an object's entry list.
///
/// Support function for derive-generated code; not part of the public
/// API contract.
#[doc(hidden)]
#[must_use]
pub fn __field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
