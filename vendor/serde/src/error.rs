//! Deserialization/serialization error type shared with `serde_json`.

use std::fmt;

/// An error produced while converting between [`crate::Value`] trees,
/// Rust types, and JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
