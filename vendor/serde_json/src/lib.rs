//! Minimal offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Converts between JSON text and the vendored `serde`'s [`Value`]
//! tree. The printer mirrors real serde_json's output byte-for-byte for
//! the shapes this workspace produces: compact form with no spaces,
//! pretty form with two-space indentation, floats in Rust's shortest
//! round-trip notation (`1.0`, `0.62`), and integers without a decimal
//! point.

#![forbid(unsafe_code)]

mod parse;

pub use serde::value::Number;
pub use serde::Value;

/// Error type for both parsing and conversion failures.
pub type Error = serde::DeError;

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors serde_json's API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Serializes `value` to pretty JSON text (two-space indent).
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_pretty_string())
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors serde_json's API.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Reconstructs `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on any shape or type mismatch.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value)
}

/// Parses JSON text and reconstructs `T` from it.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_json_value(&value)
}

/// Support function for the [`json!`] macro; not public API.
#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Support function for the [`json!`] macro; not public API.
#[doc(hidden)]
pub fn __key<K: std::fmt::Display + ?Sized>(key: &K) -> String {
    key.to_string()
}

/// Builds a [`Value`] from a JSON-like literal. Object keys may be
/// string literals or expressions; values are arbitrary serializable
/// expressions (nest further `json!` calls for literal sub-objects).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::__to_value(&$element) ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( ($crate::__key(&$key), $crate::__to_value(&$value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::__to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Value = from_str("{\"a\": [1, 2.5, \"x\"], \"b\": null, \"c\": true}").unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["b"].is_null());
        assert_eq!(v["c"].as_bool(), Some(true));
        let text = to_string(&v).unwrap();
        let reparsed: Value = from_str(&text).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn floats_print_shortest_round_trip() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.62f64).unwrap(), "0.62");
        assert_eq!(to_string(&14u64).unwrap(), "14");
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let v = json!({"a": 1u64, "b": [true]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}"
        );
    }

    #[test]
    fn json_macro_accepts_expression_keys_and_values() {
        let key = "dynamic";
        let vals = vec![1.5f64, 2.5];
        let v = json!({ key: vals, "fixed": "s" });
        assert_eq!(v["dynamic"][1].as_f64(), Some(2.5));
        assert_eq!(v["fixed"].as_str(), Some("s"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\none \"quoted\" \\ tab\t end";
        let text = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(s, "Aé");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v: Value = from_str("[-3, -2.5, 1e3, 2.5e-2]").unwrap();
        assert_eq!(v[0].as_i64(), Some(-3));
        assert_eq!(v[1].as_f64(), Some(-2.5));
        assert_eq!(v[2].as_f64(), Some(1000.0));
        assert_eq!(v[3].as_f64(), Some(0.025));
    }
}
