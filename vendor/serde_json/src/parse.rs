//! Recursive-descent JSON parser producing `serde::Value` trees.

use serde::value::{Number, Value};
use serde::DeError;

pub fn parse(text: &str) -> Result<Value, DeError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> DeError {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected `{text}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are unused by this
                            // workspace's artifacts; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| self.error("empty string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| self.error("invalid number"))
    }
}
