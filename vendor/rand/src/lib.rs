//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact API surface it consumes: [`rngs::StdRng`], [`SeedableRng`]
//! (via `seed_from_u64`), and [`Rng::gen_range`] over half-open and
//! inclusive numeric ranges.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic generator. It does **not** reproduce the
//! byte stream of upstream `rand`'s ChaCha12-based `StdRng`; everything
//! in this workspace treats the seed as an opaque determinism handle, so
//! only *internal* reproducibility (same seed → same stream, forever)
//! matters.

#![forbid(unsafe_code)]

pub mod rngs {
    //! Concrete generator types.

    /// A deterministic pseudo-random number generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, per the xoshiro authors' recommendation.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Seeding interface; only the `seed_from_u64` entry point is used by
/// this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic: the same
    /// seed always yields the same stream.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_u64_seed(state)
    }
}

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// User-facing sampling interface, mirroring `rand::Rng::gen_range`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Element types uniformly sampleable from ranges. A single generic
/// `SampleRange` impl per range shape keeps integer-literal type
/// inference working exactly as it does with the real rand crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }

    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
        // The endpoint has measure zero; half-open is indistinguishable.
        Self::sample_half_open(lo, hi, rng)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(1..=3);
            assert!((1..=3).contains(&j));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
