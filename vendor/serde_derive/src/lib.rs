//! Dependency-free `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` stub.
//!
//! Real `serde_derive` rides on `syn`/`quote`; neither is available in
//! this offline build environment, so this macro parses the derive
//! input's token stream by hand and emits impl blocks as strings. It
//! supports exactly the container shapes this workspace uses:
//!
//! - named-field structs (with optional generics),
//! - tuple/newtype structs,
//! - enums with unit, newtype, tuple, and struct variants,
//! - container attributes `rename_all = "kebab-case" | "snake_case" |
//!   "lowercase"`, `tag = "..."` (internal tagging), `transparent`,
//! - field attribute `default`.
//!
//! Anything outside that set fails to compile loudly (via the generated
//! code), never silently misbehaves.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    transparent: bool,
}

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    generics: Vec<String>,
    attrs: ContainerAttrs,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, name: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == name)
}

fn ident_string(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Splits `#[serde(...)]` attribute contents into `(key, value)` items;
/// returns an empty list for non-serde attributes (docs, derives, ...).
fn serde_attr_items(attr_body: &TokenTree) -> Vec<(String, Option<String>)> {
    let TokenTree::Group(group) = attr_body else {
        return Vec::new();
    };
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.len() != 2 || !is_ident(&toks[0], "serde") {
        return Vec::new();
    }
    let TokenTree::Group(args) = &toks[1] else {
        return Vec::new();
    };
    let mut items = Vec::new();
    let mut iter = args.stream().into_iter().peekable();
    while let Some(tok) = iter.next() {
        let Some(key) = ident_string(&tok) else {
            continue;
        };
        let mut value = None;
        if matches!(iter.peek(), Some(t) if is_punct(t, '=')) {
            iter.next();
            if let Some(TokenTree::Literal(lit)) = iter.next() {
                value = Some(lit.to_string().trim_matches('"').to_owned());
            }
        }
        items.push((key, value));
        while matches!(iter.peek(), Some(t) if !is_punct(t, ',')) {
            iter.next();
        }
        iter.next(); // consume ','
    }
    items
}

/// Consumes leading `#[...]` attributes starting at `*i`, folding any
/// serde items into `on_item`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize, mut on_item: impl FnMut(String, Option<String>)) {
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        for (k, v) in serde_attr_items(&toks[*i + 1]) {
            on_item(k, v);
        }
        *i += 2;
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();
    skip_attrs(&toks, &mut i, |k, v| match k.as_str() {
        "rename_all" => attrs.rename_all = v,
        "tag" => attrs.tag = v,
        "transparent" => attrs.transparent = true,
        _ => {}
    });
    skip_visibility(&toks, &mut i);
    let keyword = ident_string(&toks[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_string(&toks[i]).expect("expected container name");
    i += 1;

    // Generic parameter list: collect top-level parameter idents, skip
    // everything else (bounds, defaults).
    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 1usize;
        let mut at_param_start = true;
        while i < toks.len() && depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    generics.push(id.to_string());
                    at_param_start = false;
                }
                _ => at_param_start = false,
            }
            i += 1;
        }
    }

    // Scan forward (over any `where` clause) to the body.
    let data = loop {
        assert!(i < toks.len(), "derive input for {name} has no body");
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                if keyword == "enum" {
                    break Data::Enum(parse_variants(g.stream()));
                }
                break Data::NamedStruct(parse_named_fields(g.stream()));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                break Data::TupleStruct(count_tuple_fields(g.stream()));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break Data::UnitStruct,
            _ => i += 1,
        }
    };

    Container {
        name,
        generics,
        attrs,
        data,
    }
}

/// Advances past one type, honoring angle-bracket nesting, stopping
/// after the top-level `,` (or at end of input).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut default = false;
        skip_attrs(&toks, &mut i, |k, _| {
            if k == "default" {
                default = true;
            }
        });
        skip_visibility(&toks, &mut i);
        let Some(name) = ident_string(&toks[i]) else {
            panic!("expected field name, got {:?}", toks[i].to_string());
        };
        i += 1; // field name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i, |_, _| {});
        skip_visibility(&toks, &mut i);
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i, |_, _| {});
        let Some(name) = ident_string(&toks[i]) else {
            panic!("expected variant name, got {:?}", toks[i].to_string());
        };
        i += 1;
        let kind = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    i += 1;
                    VariantKind::Tuple(n)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    i += 1;
                    VariantKind::Struct(fields)
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Renaming
// ---------------------------------------------------------------------------

/// Applies a `rename_all` rule to a Rust identifier. Handles both
/// snake_case field names and PascalCase variant names.
fn apply_rename(ident: &str, rule: Option<&str>) -> String {
    match rule {
        Some("kebab-case") => case_convert(ident, '-'),
        Some("snake_case") => case_convert(ident, '_'),
        Some("lowercase") => ident.to_ascii_lowercase(),
        Some(other) => panic!("unsupported rename_all rule `{other}`"),
        None => ident.to_owned(),
    }
}

fn case_convert(ident: &str, sep: char) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (idx, ch) in ident.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if idx > 0 {
                out.push(sep);
            }
            out.push(ch.to_ascii_lowercase());
        } else if ch == '_' {
            out.push(sep);
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(container: &Container, trait_name: &str) -> String {
    if container.generics.is_empty() {
        format!(
            "impl ::serde::{t} for {n}",
            t = trait_name,
            n = container.name
        )
    } else {
        let bounded: Vec<String> = container
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{bounds}> ::serde::{t} for {n}<{params}>",
            bounds = bounded.join(", "),
            t = trait_name,
            n = container.name,
            params = container.generics.join(", ")
        )
    }
}

fn gen_serialize(container: &Container) -> String {
    let rule = container.attrs.rename_all.as_deref();
    let body = match &container.data {
        Data::NamedStruct(fields) => {
            if container.attrs.transparent && fields.len() == 1 {
                format!(
                    "::serde::Serialize::to_json_value(&self.{})",
                    fields[0].name
                )
            } else {
                let mut out = String::from(
                    "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                     = ::std::vec::Vec::new();\n",
                );
                for field in fields {
                    out.push_str(&format!(
                        "__entries.push((::std::string::String::from(\"{key}\"), \
                         ::serde::Serialize::to_json_value(&self.{name})));\n",
                        key = apply_rename(&field.name, rule),
                        name = field.name
                    ));
                }
                out.push_str("::serde::Value::Object(__entries)");
                out
            }
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_owned(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_json_value(&self.{idx})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Data::UnitStruct => "::serde::Value::Null".to_owned(),
        Data::Enum(variants) => gen_serialize_enum(container, variants),
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        header = impl_header(container, "Serialize")
    )
}

fn gen_serialize_enum(container: &Container, variants: &[Variant]) -> String {
    let name = &container.name;
    let rule = container.attrs.rename_all.as_deref();
    let tag = container.attrs.tag.as_deref();
    let mut arms = String::new();
    for variant in variants {
        let key = apply_rename(&variant.name, rule);
        let vname = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                let repr = match tag {
                    Some(tag_key) => format!(
                        "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag_key}\"), \
                         ::serde::Value::String(::std::string::String::from(\"{key}\")))])"
                    ),
                    None => format!(
                        "::serde::Value::String(::std::string::String::from(\"{key}\"))"
                    ),
                };
                arms.push_str(&format!("{name}::{vname} => {repr},\n"));
            }
            VariantKind::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|idx| format!("__f{idx}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_json_value(__f0)".to_owned()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                };
                assert!(
                    tag.is_none(),
                    "internally tagged tuple variants are unsupported"
                );
                arms.push_str(&format!(
                    "{name}::{vname}({binders}) => \
                     ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{key}\"), {inner})]),\n",
                    binders = binders.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut entries = String::new();
                for field in fields {
                    entries.push_str(&format!(
                        "(::std::string::String::from(\"{fkey}\"), \
                         ::serde::Serialize::to_json_value({fname})), ",
                        fkey = field.name,
                        fname = field.name
                    ));
                }
                let repr = match tag {
                    Some(tag_key) => format!(
                        "::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{tag_key}\"), \
                         ::serde::Value::String(::std::string::String::from(\"{key}\"))), {entries}])"
                    ),
                    None => format!(
                        "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{key}\"), \
                         ::serde::Value::Object(::std::vec![{entries}]))])"
                    ),
                };
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binders} }} => {repr},\n",
                    binders = binders.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn gen_named_fields_de(type_path: &str, fields: &[Field], rule: Option<&str>, obj: &str) -> String {
    let mut out = format!("{type_path} {{\n");
    for field in fields {
        let key = apply_rename(&field.name, rule);
        let missing = if field.default {
            "::std::default::Default::default()".to_owned()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::new(\
                 \"missing field `{key}` in {type_path}\"))"
            )
        };
        out.push_str(&format!(
            "{name}: match ::serde::__field({obj}, \"{key}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_json_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            name = field.name
        ));
    }
    out.push('}');
    out
}

fn gen_deserialize(container: &Container) -> String {
    let name = &container.name;
    let rule = container.attrs.rename_all.as_deref();
    let body = match &container.data {
        Data::NamedStruct(fields) => {
            if container.attrs.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::from_json_value(__v)? }})",
                    f = fields[0].name
                )
            } else {
                format!(
                    "if let ::serde::Value::Object(__o) = __v {{\n\
                     ::std::result::Result::Ok({built})\n\
                     }} else {{\n\
                     ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}: expected object\"))\n}}",
                    built = gen_named_fields_de(name, fields, rule, "__o")
                )
            }
        }
        Data::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__v)?))"
        ),
        Data::TupleStruct(n) => {
            let mut items = String::new();
            for idx in 0..*n {
                items.push_str(&format!(
                    "::serde::Deserialize::from_json_value(&__items[{idx}])?, "
                ));
            }
            format!(
                "if let ::serde::Value::Array(__items) = __v {{\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::new(\
                 \"{name}: expected array of length {n}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))\n\
                 }} else {{\n\
                 ::std::result::Result::Err(::serde::DeError::new(\
                 \"{name}: expected array\"))\n}}"
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => gen_deserialize_enum(container, variants),
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn from_json_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n",
        header = impl_header(container, "Deserialize")
    )
}

fn gen_deserialize_enum(container: &Container, variants: &[Variant]) -> String {
    let name = &container.name;
    let rule = container.attrs.rename_all.as_deref();

    if let Some(tag_key) = container.attrs.tag.as_deref() {
        // Internally tagged: all data lives beside the tag field.
        let mut arms = String::new();
        for variant in variants {
            let key = apply_rename(&variant.name, rule);
            let vname = &variant.name;
            match &variant.kind {
                VariantKind::Unit => {
                    arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                VariantKind::Struct(fields) => {
                    arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({built}),\n",
                        built =
                            gen_named_fields_de(&format!("{name}::{vname}"), fields, None, "__o")
                    ));
                }
                VariantKind::Tuple(_) => {
                    panic!("internally tagged tuple variants are unsupported")
                }
            }
        }
        return format!(
            "if let ::serde::Value::Object(__o) = __v {{\n\
             let __tag = match ::serde::__field(__o, \"{tag_key}\") {{\n\
             ::std::option::Option::Some(__t) => match __t.as_str() {{\n\
             ::std::option::Option::Some(__s) => __s,\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::DeError::new(\"{name}: tag `{tag_key}` must be a string\")),\n}},\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::DeError::new(\"{name}: missing tag `{tag_key}`\")),\n}};\n\
             match __tag {{\n{arms}\
             __other => ::std::result::Result::Err(::serde::DeError::new(\
             ::std::format!(\"{name}: unknown variant '{{}}'\", __other))),\n}}\n\
             }} else {{\n\
             ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected object\"))\n}}"
        );
    }

    // Externally tagged (serde's default): unit variants are plain
    // strings, data variants are single-key objects.
    let mut string_arms = String::new();
    let mut object_arms = String::new();
    for variant in variants {
        let key = apply_rename(&variant.name, rule);
        let vname = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                string_arms.push_str(&format!(
                    "\"{key}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                object_arms.push_str(&format!(
                    "\"{key}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_json_value(__inner)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let mut items = String::new();
                for idx in 0..*n {
                    items.push_str(&format!(
                        "::serde::Deserialize::from_json_value(&__items[{idx}])?, "
                    ));
                }
                object_arms.push_str(&format!(
                    "\"{key}\" => {{\n\
                     if let ::serde::Value::Array(__items) = __inner {{\n\
                     if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}::{vname}: expected array of length {n}\"));\n}}\n\
                     ::std::result::Result::Ok({name}::{vname}({items}))\n\
                     }} else {{\n\
                     ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}::{vname}: expected array\"))\n}}\n}},\n"
                ));
            }
            VariantKind::Struct(fields) => {
                object_arms.push_str(&format!(
                    "\"{key}\" => {{\n\
                     if let ::serde::Value::Object(__fo) = __inner {{\n\
                     ::std::result::Result::Ok({built})\n\
                     }} else {{\n\
                     ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}::{vname}: expected object\"))\n}}\n}},\n",
                    built = gen_named_fields_de(&format!("{name}::{vname}"), fields, None, "__fo")
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
         ::serde::Value::String(__s) => match __s.as_str() {{\n{string_arms}\
         __other => ::std::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"{name}: unknown variant '{{}}'\", __other))),\n}},\n\
         ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
         let (__k, __inner) = &__o[0];\n\
         match __k.as_str() {{\n{object_arms}\
         __other => ::std::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"{name}: unknown variant '{{}}'\", __other))),\n}}\n}},\n\
         _ => ::std::result::Result::Err(::serde::DeError::new(\
         \"{name}: expected string or single-key object\")),\n}}"
    )
}
