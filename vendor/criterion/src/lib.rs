//! Minimal offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Keeps the `Criterion` / `BenchmarkGroup` / `Bencher` call surface so
//! the workspace's `harness = false` benches compile and run, but the
//! statistics engine is a simple wall-clock loop: each iteration is
//! timed individually until a time budget is spent, the first `K`
//! samples are discarded as warm-up (cold caches, first-touch page
//! faults, frequency ramp), and both the raw mean and a 10%-per-tail
//! trimmed mean of the surviving samples are reported. The trimmed mean
//! is the robust number — one scheduler preemption can double a raw
//! mean on a short budget — while the raw mean is kept for continuity
//! with earlier recorded results. Results print to stdout as
//! `name ... time: <t>` lines plus a machine-readable `BENCHJSON {...}`
//! line per benchmark so scripts can scrape timings.
//!
//! Environment knobs:
//! - `CRITERION_BUDGET_MS` — per-benchmark measurement budget
//!   (default 120).
//! - `CRITERION_WARMUP_ITERS` — warm-up iterations discarded from the
//!   front of the sample set (default 5).
//!
//! Like real criterion, positional command-line arguments are substring
//! filters: `cargo bench --bench engine -- engine/run` (or invoking the
//! bench binary with `engine/run`) runs only benchmarks whose full id
//! contains one of the given substrings. Arguments starting with `-`
//! (e.g. the `--bench` cargo passes through) are ignored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Converts to the display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
    trimmed_mean_ns: f64,
    iters: u64,
    /// Samples the trimmed mean actually averaged (kept iterations minus
    /// both trimmed tails) — the measurement effort behind the headline
    /// number, reported so recorded results carry their own weight.
    trimmed_samples: u64,
}

impl Bencher {
    /// Measures `routine` by running it repeatedly, timing each
    /// iteration. The first `CRITERION_WARMUP_ITERS` samples are
    /// discarded; the rest feed a raw mean and a 10%-per-tail trimmed
    /// mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = budget();
        let warmup = warmup_iters();
        let mut samples_ns: Vec<u64> = Vec::with_capacity(1_024);
        let started = Instant::now();
        loop {
            let iter_started = Instant::now();
            black_box(routine());
            samples_ns.push(iter_started.elapsed().as_nanos() as u64);
            if started.elapsed() >= budget || samples_ns.len() >= 1_000_000 {
                break;
            }
        }
        // Warm-up phase: drop the leading samples, but always keep at
        // least one so short budgets still report something.
        let keep_from = warmup.min(samples_ns.len() - 1);
        let kept = &mut samples_ns[keep_from..];
        self.iters = kept.len() as u64;
        self.mean_ns = mean(kept);
        kept.sort_unstable();
        let trim = kept.len() / 10;
        let trimmed = &kept[trim..kept.len() - trim];
        self.trimmed_samples = trimmed.len() as u64;
        self.trimmed_mean_ns = mean(trimmed);
    }
}

fn mean(samples_ns: &[u64]) -> f64 {
    samples_ns.iter().map(|&ns| ns as f64).sum::<f64>() / samples_ns.len() as f64
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(120);
    Duration::from_millis(ms)
}

fn warmup_iters() -> usize {
    std::env::var("CRITERION_WARMUP_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(5)
}

/// The ISA feature set the benchmarked kernels will dispatch to, in the
/// same fixed `+`-joined order as the kernels crate's dispatch summary
/// (`"scalar"` when nothing applies). Recorded in every BENCHJSON line
/// so regression tooling can refuse to compare timings taken under
/// different instruction sets — an AES-NI number and a scalar number
/// measure different machines, not a regression.
fn isa_summary() -> &'static str {
    static ISA: OnceLock<String> = OnceLock::new();
    ISA.get_or_init(|| {
        if std::env::var("KERNELS_FORCE_SCALAR").as_deref() == Ok("1") {
            return "scalar".to_owned();
        }
        #[cfg(target_arch = "x86_64")]
        {
            // Fixed alphabetical order, matching dispatch::summary_of.
            let mut features = Vec::new();
            if std::arch::is_x86_feature_detected!("aes") {
                features.push("aes");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                features.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("sha") {
                features.push("sha");
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                features.push("sse2");
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                features.push("sse4.1");
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                features.push("ssse3");
            }
            if features.is_empty() {
                "scalar".to_owned()
            } else {
                features.join("+")
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            "scalar".to_owned()
        }
    })
}

/// Positional command-line arguments, used as benchmark-id substring
/// filters. Flag-like arguments are dropped so the list stays empty
/// (run everything) under a plain `cargo bench`.
fn filters() -> &'static [String] {
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    })
}

fn selected(full_id: &str) -> bool {
    let filters = filters();
    filters.is_empty() || filters.iter().any(|f| full_id.contains(f.as_str()))
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_id: &str, throughput: Option<Throughput>, mut f: F) {
    if !selected(full_id) {
        return;
    }
    let mut bencher = Bencher {
        mean_ns: 0.0,
        trimmed_mean_ns: 0.0,
        iters: 0,
        trimmed_samples: 0,
    };
    f(&mut bencher);
    // The trimmed mean is the headline number; the raw mean rides along
    // for comparison (a large gap between them flags a noisy run), and
    // the sample count behind the trimmed mean shows measurement effort.
    let mut line = format!(
        "{full_id:<48} time: {:>12}   (raw {}, {} iters, {} samples)",
        human_time(bencher.trimmed_mean_ns),
        human_time(bencher.mean_ns),
        bencher.iters,
        bencher.trimmed_samples
    );
    let mut extra = String::new();
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / (bencher.trimmed_mean_ns / 1e9);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!("   {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                extra = format!(",\"bytes\":{n}");
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("   {:.0} elem/s", per_sec(n)));
                extra = format!(",\"elements\":{n}");
            }
        }
    }
    println!("{line}");
    // Host core count, so a 1-core box's tie results (no parallel
    // speedup available) are self-explaining in recorded JSON.
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    println!(
        "BENCHJSON {{\"id\":\"{full_id}\",\"mean_ns\":{:.1},\"trimmed_mean_ns\":{:.1},\"iters\":{},\"samples\":{},\"cores\":{cores},\"isa\":\"{}\"{extra}}}",
        bencher.mean_ns, bencher.trimmed_mean_ns, bencher.iters, bencher.trimmed_samples,
        isa_summary()
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.id, None, |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the stub
    /// sizes its loop by time budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
