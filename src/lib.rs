//! # accelerometer-suite
//!
//! The umbrella crate of the Accelerometer (ASPLOS 2020) reproduction:
//! re-exports every component crate and hosts the runnable examples and
//! cross-crate integration tests.
//!
//! | Crate | Role |
//! |---|---|
//! | [`model`] (`accelerometer`) | The analytical model — the paper's contribution |
//! | [`fleet`] | Calibrated workload characterization datasets (§2) |
//! | [`kernels`] | From-scratch software kernels (AES, LZ, MLP, allocator, …) |
//! | [`profiler`] | Synthetic Strobelight: traces → breakdowns |
//! | [`sim`] | Discrete-event microservice simulator + A/B harness (§4) |
//! | [`bench`](mod@bench) | Table/figure regeneration + Criterion benchmarks |
//! | [`cli`] | `accelctl`, the artifact workflow |
//!
//! ```
//! use accelerometer_suite::model::{ModelParams, Scenario, ThreadingDesign, AccelerationStrategy};
//!
//! let params = ModelParams::builder()
//!     .host_cycles(2.0e9)
//!     .kernel_fraction(0.165844)
//!     .offloads(298_951.0)
//!     .setup_cycles(10.0)
//!     .interface_cycles(3.0)
//!     .peak_speedup(6.0)
//!     .build()?;
//! let est = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip).estimate();
//! assert!((est.throughput_gain_percent() - 15.7).abs() < 0.1);
//! # Ok::<(), accelerometer_suite::model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use accelerometer as model;
pub use accelerometer_bench as bench;
pub use accelerometer_cli as cli;
pub use accelerometer_fleet as fleet;
pub use accelerometer_kernels as kernels;
pub use accelerometer_profiler as profiler;
pub use accelerometer_sim as sim;
