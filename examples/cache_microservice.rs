//! A living Cache1: the complete microservice request loop — unwrap the
//! RPC (decrypt → decompress → deserialize), serve the key-value store,
//! wrap the response — with every stage's wall time measured. This is
//! the paper's Fig. 1/Fig. 9 story reproduced on real code: how little
//! of a cache's time goes to actually caching.
//!
//! Run with: `cargo run --release --example cache_microservice`

use std::time::Instant;

use accelerometer_suite::kernels::kvstore::KvStore;
use accelerometer_suite::kernels::pipeline::RpcPipeline;
use accelerometer_suite::kernels::KvMessage;
use accelerometer_suite::model::{
    amdahl, AccelerationStrategy, ModelParams, Scenario, ThreadingDesign,
};

const REQUESTS: usize = 3_000;

fn value_payload(i: usize) -> Vec<u8> {
    // JSON-ish, compressible payloads of varied size.
    format!(
        "{{\"user\":{i},\"stories\":[{}],\"padding\":\"{}\"}}",
        "1234567890,".repeat(8 + i % 48),
        "x".repeat(64 + (i * 37) % 900)
    )
    .into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = [0xC4u8; 16];
    let mut client = RpcPipeline::new(&key);
    let mut server_rx = RpcPipeline::new(&key);
    let mut server_tx = RpcPipeline::new(&key);
    let mut store = KvStore::new(64);

    // Pre-seal the client traffic (client costs are not the server's).
    let mut frames = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        let message = if i % 3 == 0 {
            KvMessage::Set {
                key: format!("user:{}", i % 500).into_bytes(),
                value: value_payload(i),
                ttl_seconds: 120,
            }
        } else {
            KvMessage::Get {
                key: format!("user:{}", (i * 7) % 700).into_bytes(),
            }
        };
        frames.push(client.seal(&message));
    }

    // The server loop, timed per phase.
    let mut unwrap_time = std::time::Duration::ZERO;
    let mut serve_time = std::time::Duration::ZERO;
    let mut wrap_time = std::time::Duration::ZERO;
    for (now, frame) in frames.iter().enumerate() {
        let t0 = Instant::now();
        let request = server_rx.open(frame)?;
        let t1 = Instant::now();
        let response = store.serve(&request, now as u64 / 100);
        let t2 = Instant::now();
        let _wire = server_tx.seal(&response);
        let t3 = Instant::now();
        unwrap_time += t1 - t0;
        serve_time += t2 - t1;
        wrap_time += t3 - t2;
    }

    let total = unwrap_time + serve_time + wrap_time;
    let pct = |d: std::time::Duration| d.as_secs_f64() / total.as_secs_f64() * 100.0;
    println!("served {REQUESTS} requests (hit rate {:.0}%)", store.stats().hit_rate() * 100.0);
    println!("server time by phase:");
    println!("  unwrap (decrypt+decompress+deserialize): {:>5.1}%", pct(unwrap_time));
    println!("  key-value serving (application logic)  : {:>5.1}%", pct(serve_time));
    println!("  wrap (serialize+compress+encrypt+frame) : {:>5.1}%", pct(wrap_time));

    let alpha_app = serve_time.as_secs_f64() / total.as_secs_f64();
    println!(
        "\nthe living Fig. 1: application logic is {:.1}% of this cache's cycles",
        alpha_app * 100.0
    );
    println!(
        "ideal bound from accelerating *only* the application logic: {:+.1}%",
        (amdahl::ideal_speedup(alpha_app) - 1.0) * 100.0
    );

    // And the orchestration opportunity, in model terms: accelerate the
    // encryption share of the orchestration with an AES-NI-style unit.
    let secure_share = {
        let stats = server_rx.stats();
        let total_bytes: u64 = [
            accelerometer_suite::kernels::Stage::Serialization,
            accelerometer_suite::kernels::Stage::Compression,
            accelerometer_suite::kernels::Stage::SecureIo,
            accelerometer_suite::kernels::Stage::IoPrePostProcessing,
        ]
        .iter()
        .map(|&s| stats.bytes(s))
        .sum();
        stats.bytes(accelerometer_suite::kernels::Stage::SecureIo) as f64 / total_bytes as f64
    };
    let alpha = (1.0 - alpha_app) * secure_share;
    let params = ModelParams::builder()
        .host_cycles(2.0e9)
        .kernel_fraction(alpha.clamp(0.01, 0.99))
        .offloads(REQUESTS as f64 * 100.0)
        .setup_cycles(10.0)
        .interface_cycles(3.0)
        .peak_speedup(6.0)
        .build()?;
    let est = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip)
        .estimate();
    println!(
        "accelerating the secure-I/O slice of the orchestration (alpha = {:.1}%): {:+.1}%",
        alpha * 100.0,
        est.throughput_gain_percent()
    );
    println!("— the Table 4 thesis: accelerate the orchestration, not just the app logic.");
    Ok(())
}
