//! SLO guardrails and bound diagnostics: the operator-side workflow §3
//! motivates — "service operators can use the latency reduction equation
//! to ensure that the latency SLO is not violated."
//!
//! Scenario: a team wants to move compression to a shared PCIe device
//! with Sync-OS threading. Throughput looks good; does the SLO survive,
//! and what actually bounds the design?
//!
//! Run with: `cargo run --example slo_guardrail`

use accelerometer_suite::model::slo::{
    gains_throughput_but_slows_requests, max_interface_latency, max_offload_rate,
    min_peak_speedup,
};
use accelerometer_suite::model::{
    diagnose, AccelerationStrategy, LatencySlo, ModelParams, Scenario, ThreadingDesign,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The candidate design: 12% of cycles in compression, 20k offloads/s,
    // a PCIe device (L = 2,500 cycles) with A = 20, Sync-OS threading
    // with 6,000-cycle switches (µs-scale service, cold caches).
    let params = ModelParams::builder()
        .host_cycles(2.3e9)
        .kernel_fraction(0.12)
        .offloads(20_000.0)
        .interface_cycles(2_500.0)
        .thread_switch_cycles(6_000.0)
        .peak_speedup(20.0)
        .build()?;
    let scenario = Scenario::new(params, ThreadingDesign::SyncOs, AccelerationStrategy::OffChip);
    let est = scenario.estimate();
    println!("candidate: off-chip compression, Sync-OS threading");
    println!(
        "  throughput {:+.2}%   per-request latency {:+.2}%",
        est.throughput_gain_percent(),
        est.latency_gain_percent()
    );
    if gains_throughput_but_slows_requests(&scenario) {
        println!("  !! the design gains QPS while slowing individual requests");
    }

    // Guardrails for a "do no harm" latency SLO.
    let slo = LatencySlo::no_regression();
    println!("\nguardrails for a no-regression latency SLO:");
    match max_interface_latency(&scenario, slo) {
        Some(l) => println!("  max tolerable L : {:.0} cycles", l.get()),
        None => println!("  max tolerable L : infeasible at any L >= 0"),
    }
    match max_offload_rate(&scenario, slo) {
        Some(n) if n.is_finite() => println!("  max offload rate: {n:.0} per second"),
        Some(_) => println!("  max offload rate: unbounded"),
        None => println!("  max offload rate: infeasible even at n = 0"),
    }
    match min_peak_speedup(&scenario, slo) {
        Some(a) => println!("  min device A    : {a:.2}"),
        None => println!("  min device A    : no finite A meets the SLO"),
    }

    // Why is the design capped? Decompose the cycle budget.
    println!("\nbound diagnosis:");
    print!("{}", diagnose(&scenario).render());

    // The diagnosis points at thread switches; try the async alternative.
    let async_scenario = Scenario::new(
        params,
        ThreadingDesign::AsyncSameThread,
        AccelerationStrategy::OffChip,
    );
    let async_est = async_scenario.estimate();
    println!("\nasync same-thread alternative:");
    println!(
        "  throughput {:+.2}%   per-request latency {:+.2}%",
        async_est.throughput_gain_percent(),
        async_est.latency_gain_percent()
    );
    print!("{}", diagnose(&async_scenario).render());
    Ok(())
}
