//! Accelerator design-space exploration: an architect sizing an off-chip
//! compression ASIC for a feed-ranking service (§5's compression study).
//!
//! Questions this example answers with the model:
//! 1. What is the break-even offload granularity per threading design?
//! 2. How much of the ideal gain does each design realize?
//! 3. How slow may the PCIe interface get before the win evaporates?
//! 4. How does Accelerometer's answer differ from LogCA's (prior work)?
//!
//! Run with: `cargo run --example accelerator_design`

use accelerometer_suite::fleet::params::compression_feed1;
use accelerometer_suite::model::logca::LogCa;
use accelerometer_suite::model::sweep::{log_space, sweep, SweepAxis};
use accelerometer_suite::model::units::bytes;
use accelerometer_suite::model::{
    project, throughput_breakeven, BreakEven, Complexity, ModelParams, OffloadContext, Scenario,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rec = compression_feed1();
    println!("designing an off-chip compression accelerator for {}", rec.name);
    println!(
        "workload: {} compressions/s, alpha = {:.2}, Cb = {} cycles/B\n",
        rec.profile.total_offloads,
        rec.profile.kernel_fraction,
        rec.profile.cost.cycles_per_byte.get()
    );

    // 1. Break-even granularity per threading design.
    println!("break-even granularity and realized gain per design:");
    for cfg in &rec.configs {
        let ctx = OffloadContext::new(
            cfg.accelerator.overheads,
            cfg.accelerator.peak_speedup,
            cfg.design,
            cfg.accelerator.strategy,
        );
        let be = throughput_breakeven(&rec.profile.cost, &ctx);
        let be_text = match be {
            BreakEven::AtLeast(g) => format!("g >= {:.0} B", g.get()),
            BreakEven::Always => "always lucrative".to_owned(),
            BreakEven::Never => "never lucrative".to_owned(),
        };
        let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy)?;
        println!(
            "  {:<18} {be_text:<18} speedup {:>5.2}%  ({:.0}% of ideal)",
            cfg.label,
            p.estimate.throughput_gain_percent(),
            p.efficiency_vs_ideal() * 100.0,
        );
    }

    // 2. Interface-latency tolerance: sweep L for the Sync design and
    // find where the speedup drops below 5%.
    let sync = &rec.configs[1];
    let p = project(&rec.profile, &sync.accelerator, sync.design, sync.policy)?;
    let params = ModelParams::builder()
        .host_cycles(rec.profile.total_cycles.get())
        .kernel_fraction(p.selection.alpha)
        .offloads(p.selection.offloads)
        .overheads(sync.accelerator.overheads)
        .peak_speedup(sync.accelerator.peak_speedup)
        .build()?;
    let scenario = Scenario::new(params, sync.design, sync.accelerator.strategy);
    println!("\ninterface-latency sweep (off-chip Sync):");
    let mut max_tolerable = 0.0;
    for point in sweep(&scenario, SweepAxis::InterfaceLatency, &log_space(100.0, 100_000.0, 13)) {
        let gain = point.estimate.throughput_gain_percent();
        println!("  L = {:>9.0} cycles: {gain:>6.2}%", point.x);
        if gain >= 5.0 {
            max_tolerable = point.x;
        }
    }
    println!("  => the ASIC keeps a >=5% win up to L ~= {max_tolerable:.0} cycles");

    // 3. Prior-work comparison: LogCA models a single blocking offload,
    // so it agrees with Accelerometer's Sync break-even but cannot see
    // the Sync-OS/Async differences.
    let logca = LogCa {
        latency: accelerometer_suite::model::Cycles::new(2_300.0),
        overhead: accelerometer_suite::model::Cycles::new(0.0),
        computational_index: rec.profile.cost.cycles_per_byte,
        complexity: Complexity::LINEAR,
        acceleration: 27.0,
    };
    println!("\nLogCA view of the same device (single blocking offload):");
    println!("  g1 (break-even)      = {:.0} B", logca.g1().expect("A > 1").get());
    println!("  g_{{A/2}} (half peak)   = {:.0} B", logca.g_half().expect("A > 1").get());
    for g in [512.0, 4_096.0, 65_536.0] {
        println!("  speedup at g = {g:>6.0}: {:.2}x", logca.speedup(bytes(g)));
    }
    println!(
        "  LogCA sees a {:.0}x peak per offload, but only Accelerometer's\n  \
         threading-aware view shows Sync-OS collapsing to ~1.6% service-level gain.",
        logca.peak_bound()
    );
    Ok(())
}
