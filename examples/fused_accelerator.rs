//! The §5 fusion argument, quantified: "off-chip encryption accelerators
//! can be extended to perform compression to leverage improving two
//! kernels for the price of one offload."
//!
//! A Cache3-like service pays 19.2% of cycles encrypting and 10%
//! compressing. Compare: accelerating encryption alone, both kernels on
//! separate devices, and both on one fused device that compresses and
//! encrypts per dispatch.
//!
//! Run with: `cargo run --example fused_accelerator`

use accelerometer_suite::model::multi::{KernelComponent, MultiKernelPlan};
use accelerometer_suite::model::{
    AccelerationStrategy, Cycles, DriverMode, OffloadOverheads, ThreadingDesign,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let encryption = KernelComponent {
        alpha: 0.19154,
        offloads: 101_863.0,
        peak_speedup: 27.0,
    };
    let compression = KernelComponent {
        alpha: 0.10,
        offloads: 101_863.0,
        peak_speedup: 27.0,
    };
    let base = MultiKernelPlan {
        host_cycles: Cycles::new(2.3e9),
        kernels: vec![encryption, compression],
        overheads: OffloadOverheads::new(0.0, 2_530.0, 0.0, 0.0),
        design: ThreadingDesign::AsyncNoResponse,
        strategy: AccelerationStrategy::OffChip,
        driver: DriverMode::AwaitsAck,
    };

    // Option A: encryption only (the paper's case study 2).
    let mut enc_only = base.clone();
    enc_only.kernels.truncate(1);
    let a = enc_only.estimate_separate()?;
    println!("A. encryption device only          : {:+.2}%", a.throughput_gain_percent());

    // Option B: a second, separate compression device — every kernel's
    // offloads pay their own PCIe dispatch.
    let b = base.estimate_separate()?;
    println!("B. two separate devices            : {:+.2}%", b.throughput_gain_percent());

    // Option C: one fused device — each message is compressed *and*
    // encrypted per dispatch, so the 2,530-cycle transfer is paid once.
    let c = base.estimate_fused(101_863.0)?;
    println!("C. one fused compress+encrypt unit : {:+.2}%", c.throughput_gain_percent());

    println!(
        "\nfusion dividend over separate devices: {:+.2} points",
        base.fusion_gain_points(101_863.0)?
    );
    println!(
        "latency: A {:+.2}%  B {:+.2}%  C {:+.2}%",
        a.latency_gain_percent(),
        b.latency_gain_percent(),
        c.latency_gain_percent()
    );
    println!("\n\"improving two kernels for the price of one offload\" — §5, quantified.");
    Ok(())
}
