//! Quickstart: estimate speedup from hardware acceleration the way §4's
//! first case study does — Intel AES-NI accelerating a caching
//! microservice's encryption.
//!
//! Run with: `cargo run --example quickstart`

use accelerometer_suite::model::{
    estimate_with_queue_distribution, AccelerationStrategy, Cycles, DriverMode, ModelParams,
    Scenario, ThreadingDesign,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1 (§4 methodology): gather the model parameters. These are the
    // exact Table 6 values for the AES-NI case study.
    let params = ModelParams::builder()
        .host_cycles(2.0e9) // C: one second at the host's busy frequency
        .kernel_fraction(0.165844) // α: encryption's share of host cycles
        .offloads(298_951.0) // n: lucrative encryptions per second
        .setup_cycles(10.0) // o0: register setup for the instruction
        .interface_cycles(3.0) // L: operand movement
        .peak_speedup(6.0) // A: AES-NI vs software AES
        .build()?;

    // Step 2: pick the threading design and strategy. Cache1 runs one
    // thread per core and the AES-NI instruction executes synchronously
    // on the core itself.
    let scenario = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip);

    // Step 3: evaluate.
    let est = scenario.estimate();
    println!("AES-NI for Cache1 (Table 6, row 1)");
    println!(
        "  throughput speedup : {:.4}x ({:+.1}%)",
        est.throughput_speedup,
        est.throughput_gain_percent()
    );
    println!(
        "  latency reduction  : {:.4}x ({:+.1}%)",
        est.latency_reduction,
        est.latency_gain_percent()
    );
    println!(
        "  host cycles freed  : {:.1}% of the machine",
        est.freed_cycle_fraction(&params) * 100.0
    );
    println!("  paper reported     : estimated 15.7%, measured 14% in production");

    // The same evaluation with an explicit queueing distribution instead
    // of the mean-Q form (eqn 1's Σ Qᵢ variant): useful when a shared
    // accelerator's queue has been measured.
    let queue_samples: Vec<Cycles> = (0..8).map(|i| Cycles::new(f64::from(i) * 2.0)).collect();
    let with_queue = estimate_with_queue_distribution(
        &params,
        ThreadingDesign::Sync,
        AccelerationStrategy::OnChip,
        DriverMode::Posted,
        &queue_samples,
    );
    println!(
        "  with an 8-sample queue distribution: {:.4}x",
        with_queue.throughput_speedup
    );
    Ok(())
}
