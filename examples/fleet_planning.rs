//! Fleet-wide capacity planning: a data-center operator projecting how
//! many servers a common-overhead accelerator saves across the installed
//! base (§3's first application of the model).
//!
//! Run with: `cargo run --example fleet_planning`

use accelerometer_suite::fleet::fleetwide::{
    fleet_functionality_fraction, fleet_speedup, DEFAULT_WEIGHTS,
};
use accelerometer_suite::fleet::{profile, FunctionalityCategory, ServiceId};
use accelerometer_suite::model::{
    amdahl, AccelerationStrategy, ModelParams, Scenario, ThreadingDesign,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The candidate: an on-chip compression unit (Chen et al. style,
    // A = 5) deployed fleet-wide in the next server generation.
    println!("candidate: on-chip compression acceleration, A = 5\n");

    let fleet_compression =
        fleet_functionality_fraction(FunctionalityCategory::Compression, &DEFAULT_WEIGHTS);
    println!(
        "fleet-wide compression share (installed-base weighted): {:.1}%",
        fleet_compression * 100.0
    );
    println!(
        "fleet-wide ideal bound (infinite acceleration): {:+.1}%\n",
        (amdahl::ideal_speedup(fleet_compression) - 1.0) * 100.0
    );

    // Per-service projection: each service offloads its own compression
    // mix (one offload per compression call; on-chip, Sync).
    let mut per_service = Vec::new();
    println!("per-service projections:");
    for &service in &ServiceId::CHARACTERIZED {
        let p = profile(service);
        let alpha = p.functionality.fraction(FunctionalityCategory::Compression);
        if alpha <= 0.0 {
            per_service.push((service, 1.0));
            continue;
        }
        let params = ModelParams::builder()
            .host_cycles(p.rates.host_cycles_per_second)
            .kernel_fraction(alpha)
            .offloads(p.rates.compressions_per_second)
            .peak_speedup(5.0)
            .build()?;
        let est = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip)
            .estimate();
        println!(
            "  {service:<7} compression {:>4.1}% of cycles -> speedup {:+.2}%",
            alpha * 100.0,
            est.throughput_gain_percent()
        );
        per_service.push((service, est.throughput_speedup));
    }

    // Compose into a fleet-level number and translate to servers.
    let fleet = fleet_speedup(&per_service, &DEFAULT_WEIGHTS);
    println!("\nfleet-wide throughput speedup: {fleet:.4}x ({:+.2}%)", (fleet - 1.0) * 100.0);
    let installed_base = 300_000.0_f64; // hypothetical servers
    let freed = installed_base * (1.0 - 1.0 / fleet);
    println!(
        "at a {installed_base:.0}-server installed base, that is ~{freed:.0} servers of capacity"
    );
    println!("(the Table 4 'common overheads provide fleet-wide wins' argument, quantified)");
    Ok(())
}
