//! The §4 parameter-derivation methodology, live: measure `Cb` for real
//! kernels on *this* machine with micro-benchmarks, derive an `A` from
//! two implementations of the same kernel, and feed the measured numbers
//! straight into the model.
//!
//! This is the workflow the paper describes — "we measure model
//! parameters using... micro-benchmarks that measure execution time on
//! the host and the accelerator" — with this repository's own kernels as
//! the hosts. (Wall-clock measurements vary by machine; the printed
//! speedups will too. That's the point.)
//!
//! Run with: `cargo run --release --example derive_parameters`

use accelerometer_suite::kernels::aes::Aes128;
use accelerometer_suite::kernels::harness::{acceleration_factor, Harness};
use accelerometer_suite::kernels::pipeline::{RpcPipeline, Stage};
use accelerometer_suite::kernels::{hash, lz, KvMessage};
use accelerometer_suite::model::{
    throughput_breakeven, AccelerationStrategy, BreakEven, ModelParams, OffloadContext,
    OffloadOverheads, Scenario, ThreadingDesign,
};

const CLOCK_HZ: f64 = 2.0e9; // nominal 2 GHz host, matching the paper's C

fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| if i % 4 == 0 { (i / 4 % 251) as u8 } else { b'x' })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let harness = Harness::new(CLOCK_HZ);
    let data = payload(16 * 1024);

    // --- Step 1: measure Cb per kernel -----------------------------------
    println!("measured per-byte costs at a nominal {CLOCK_HZ:.1e} Hz clock:");
    let cipher = Aes128::new(&[7u8; 16]);
    let mut buf = data.clone();
    let aes = harness.measure(64, data.len() as u64, || {
        cipher.ctr_apply(&[1u8; 16], &mut buf)
    });
    println!("  aes-128-ctr : {:>7.2} cycles/B", aes.cycles_per_byte().get());

    let compress = harness.measure(64, data.len() as u64, || lz::compress(&data));
    println!("  lz compress : {:>7.2} cycles/B", compress.cycles_per_byte().get());

    let sha = harness.measure(64, data.len() as u64, || hash::sha256(&data));
    let fnv = harness.measure(64, data.len() as u64, || hash::fnv1a_64(&data));
    println!("  sha-256     : {:>7.2} cycles/B", sha.cycles_per_byte().get());
    println!("  fnv-1a      : {:>7.2} cycles/B", fnv.cycles_per_byte().get());

    // --- Step 2: derive an A between two same-kernel implementations -----
    // SHA-256 as the "host" integrity kernel, FNV-1a standing in for a
    // hardware CRC engine: the ratio of their per-byte costs is A.
    let a_checksum = acceleration_factor(&sha, &fnv);
    println!("\nchecksum accelerator: A = {a_checksum:.1} (sha-256 host vs fnv-engine)");

    // --- Step 3: break-even for that accelerator over PCIe ----------------
    let ctx = OffloadContext::new(
        OffloadOverheads::new(100.0, 2_000.0, 0.0, 0.0),
        a_checksum,
        ThreadingDesign::Sync,
        AccelerationStrategy::OffChip,
    );
    match throughput_breakeven(&sha.kernel_cost(), &ctx) {
        BreakEven::AtLeast(g) => {
            println!("  over PCIe (L = 2,000 cycles): lucrative when g >= {:.0} B", g.get());
        }
        BreakEven::Always => println!("  over PCIe: every offload lucrative"),
        BreakEven::Never => println!("  over PCIe: never lucrative"),
    }

    // --- Step 4: a live α profile from the RPC pipeline -------------------
    let mut sender = RpcPipeline::new(&[3u8; 16]);
    for i in 0..200 {
        let message = KvMessage::Set {
            key: format!("key:{i}").into_bytes(),
            value: payload(512 + (i % 7) * 700),
            ttl_seconds: 60,
        };
        let _ = sender.seal(&message);
    }
    println!("\nRPC pipeline stage shares (by bytes processed, 200 messages):");
    let shares = sender.stats().shares();
    for (stage, share) in &shares {
        println!("  {stage:?}: {:.1}%", share * 100.0);
    }

    // --- Step 5: feed everything into the model --------------------------
    // Suppose secure I/O (encryption) is the offload target and the
    // pipeline profile says what fraction of pipeline cycles it is;
    // project an AES-NI-style on-chip unit (A = 6) at 100k offloads/s.
    let secure_share = shares
        .iter()
        .find(|(s, _)| *s == Stage::SecureIo)
        .map_or(0.2, |(_, share)| *share);
    let alpha = 0.5 * secure_share; // pipeline is ~half the service's cycles
    let params = ModelParams::builder()
        .host_cycles(CLOCK_HZ)
        .kernel_fraction(alpha)
        .offloads(100_000.0)
        .setup_cycles(10.0)
        .interface_cycles(3.0)
        .peak_speedup(6.0)
        .build()?;
    let est = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip)
        .estimate();
    println!(
        "\nprojected on-chip encryption gain for a service spending {:.1}% in secure I/O: {:+.2}%",
        alpha * 100.0,
        est.throughput_gain_percent()
    );
    Ok(())
}
