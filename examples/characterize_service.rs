//! The §2 characterization pipeline end to end: sample call traces from
//! a service, tag leaves, bucket functionalities, and print the
//! breakdowns that motivate acceleration — then chase the biggest
//! orchestration overhead with a projection.
//!
//! Run with: `cargo run --example characterize_service [service]`

use accelerometer_suite::fleet::{profile, FunctionalityCategory, ServiceId};
use accelerometer_suite::model::{
    amdahl, AccelerationStrategy, ModelParams, Scenario, ThreadingDesign,
};
use accelerometer_suite::profiler::{analyze, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requested = std::env::args().nth(1).unwrap_or_else(|| "Web".to_owned());
    let service = ServiceId::ALL
        .into_iter()
        .find(|s| s.to_string().eq_ignore_ascii_case(&requested))
        .ok_or_else(|| format!("unknown service '{requested}'"))?;

    // Sample the service the way Strobelight does in production.
    let mut sampler = TraceGenerator::new(profile(service), 2_026);
    let traces = sampler.generate(80_000);
    let report = analyze(&traces, sampler.registry());
    println!("{}", report.render());

    // Find the biggest orchestration overhead the profile exposes...
    let (target, share) = report
        .functionality
        .iter()
        .filter(|(c, _)| !c.is_core() && *c != FunctionalityCategory::Miscellaneous)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("services have orchestration work");
    println!("largest orchestration overhead: {target} at {share:.1}% of cycles");

    // ...and project accelerating it with a hypothetical 8x on-chip unit.
    let rates = profile(service).rates;
    let params = ModelParams::builder()
        .host_cycles(rates.host_cycles_per_second)
        .kernel_fraction(share / 100.0)
        .offloads(50_000.0)
        .peak_speedup(8.0)
        .build()?;
    let est = Scenario::new(params, ThreadingDesign::Sync, AccelerationStrategy::OnChip)
        .estimate();
    println!(
        "an 8x on-chip accelerator for it projects {:+.2}% service throughput",
        est.throughput_gain_percent()
    );
    println!(
        "(ideal bound for that overhead: {:+.2}%)",
        (amdahl::ideal_speedup(share / 100.0) - 1.0) * 100.0
    );
    Ok(())
}
