//! Validating a projection before committing hardware: run the model's
//! estimate *and* a simulated A/B test for the same candidate, the way
//! §4 compares Accelerometer's estimates against production A/B tests.
//!
//! Scenario: a µs-scale caching service considers an off-chip (PCIe)
//! compression device shared by all cores, offloading synchronously with
//! thread oversubscription (Sync-OS).
//!
//! Run with: `cargo run --release --example simulate_ab_test`

use accelerometer_suite::model::units::cycles_per_byte;
use accelerometer_suite::model::{
    estimate, select_lucrative, throughput_breakeven, AccelerationStrategy, DriverMode,
    GranularityCdf, KernelCost, ModelParams, OffloadContext, OffloadOverheads, ThreadingDesign,
};
use accelerometer_suite::sim::workload::WorkloadSpec;
use accelerometer_suite::sim::{run_ab, DeviceKind, OffloadConfig, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The service: 4 cores, 8 worker threads, one compression per
    // request, compression sizes skewed small.
    let granularity = GranularityCdf::from_points(vec![
        (64.0, 0.25),
        (256.0, 0.55),
        (1_024.0, 0.80),
        (4_096.0, 0.95),
        (16_384.0, 1.0),
    ])?;
    let cb = cycles_per_byte(4.0);
    let workload = WorkloadSpec {
        non_kernel_cycles: 12_000.0,
        kernels_per_request: 1,
        granularity: granularity.clone(),
        cycles_per_byte: cb,
    };
    // The device: A = 16 over PCIe (L = 2,000 cycles), one server.
    let overheads = OffloadOverheads::new(100.0, 2_000.0, 0.0, 1_200.0);
    let design = ThreadingDesign::SyncOs;
    let strategy = AccelerationStrategy::OffChip;

    // --- Model side -------------------------------------------------------
    let cost = KernelCost::linear(cb);
    let ctx = OffloadContext::new(overheads, 16.0, design, strategy);
    let breakeven = throughput_breakeven(&cost, &ctx);
    println!(
        "model break-even: offload when g >= {:.0} B",
        breakeven.threshold().expect("finite").get()
    );

    let alpha = workload.expected_alpha();
    let requests_per_second = 2.3e9 / workload.mean_request_cycles();
    let selection = select_lucrative(&granularity, requests_per_second, alpha, breakeven);
    let params = ModelParams::builder()
        .host_cycles(2.3e9)
        .kernel_fraction(selection.alpha)
        .offloads(selection.offloads)
        .overheads(overheads)
        .peak_speedup(16.0)
        .build()?;
    let model = estimate(&params, design, strategy, DriverMode::AwaitsAck);
    println!(
        "model estimate: {:+.2}% throughput, {:+.2}% latency ({}/{} offloads lucrative)",
        model.throughput_gain_percent(),
        model.latency_gain_percent(),
        selection.offloads.round(),
        requests_per_second.round(),
    );

    // --- Simulator side ---------------------------------------------------
    let control = SimConfig {
        cores: 4,
        threads: 8,
        context_switch_cycles: 1_200.0,
        horizon: 4e8,
        seed: 7,
        workload,
        offload: None,
        fault: Default::default(),
        recovery: Default::default(),
    };
    let offload = OffloadConfig {
        design,
        strategy,
        driver: DriverMode::AwaitsAck,
        device: DeviceKind::Shared { servers: 1 },
        peak_speedup: 16.0,
        interface_latency: 2_000.0,
        setup_cycles: 100.0,
        dispatch_pollution: 0.0,
        min_offload_bytes: breakeven.threshold().map(|b| b.get()),
    };
    let ab = run_ab(&control, offload);
    println!(
        "simulated A/B:  {:+.2}% throughput, {:+.2}% mean latency",
        ab.speedup_percent(),
        (ab.latency_reduction() - 1.0) * 100.0
    );
    println!(
        "  treatment offloaded {} kernels, suppressed {} below break-even",
        ab.treatment.offloads_dispatched, ab.treatment.offloads_suppressed
    );
    println!(
        "  emergent device queue delay: {:.0} cycles (model assumed Q = 0)",
        ab.treatment.mean_queue_delay
    );
    println!(
        "  p99 latency: {:.0} -> {:.0} cycles",
        ab.baseline.latency.p99, ab.treatment.latency.p99
    );

    let gap = (model.throughput_gain_percent() - ab.speedup_percent()).abs();
    println!("\nmodel-vs-simulation gap: {gap:.2} points");
    println!("(the paper's production gaps were 1.7, 1.1, and 3.7 points)");
    Ok(())
}
