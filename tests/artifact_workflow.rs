//! The artifact-appendix workflow (Appendix A.5), end to end: write a
//! parameter configuration file, run the model on it through the CLI
//! layer, and check the estimated speedups — the exact usage the paper's
//! released artifact supports.

use std::fs;

use accelerometer_suite::cli::run;
use accelerometer_suite::model::ConfigFile;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("accelerometer-artifact-{}-{name}", std::process::id()))
}

const TABLE6_CONFIG: &str = r#"{
  "scenarios": [
    {
      "name": "aes-ni-cache1",
      "c": 2.0e9, "alpha": 0.165844, "n": 298951,
      "o0": 10, "l": 3, "a": 6,
      "design": "sync", "strategy": "on-chip"
    },
    {
      "name": "encryption-cache3",
      "c": 2.3e9, "alpha": 0.19154, "n": 101863,
      "l": 2530, "a": 27,
      "design": "async-no-response", "strategy": "off-chip"
    },
    {
      "name": "inference-ads1",
      "c": 2.5e9, "alpha": 0.52, "n": 10,
      "o0": 25000000, "o1": 12500, "a": 1,
      "design": "async-distinct-thread", "strategy": "remote"
    }
  ]
}"#;

#[test]
fn config_file_workflow_reproduces_table6() {
    let path = temp_path("table6.json");
    fs::write(&path, TABLE6_CONFIG).expect("temp dir writable");
    let out = run(&["estimate".to_owned(), path.to_string_lossy().into_owned()])
        .expect("estimate succeeds");
    fs::remove_file(&path).ok();

    // The three Table 6 estimates, straight from the config file.
    assert!(out.contains("aes-ni-cache1"), "{out}");
    assert!(out.contains("+15.7"), "{out}");
    assert!(out.contains("+8.6"), "{out}");
    assert!(out.contains("+72.39") || out.contains("+72.4"), "{out}");
}

#[test]
fn config_round_trips_through_serde() {
    let cfg = ConfigFile::from_json(TABLE6_CONFIG).expect("parses");
    assert_eq!(cfg.scenarios.len(), 3);
    let json = cfg.to_json().expect("serializes");
    let back = ConfigFile::from_json(&json).expect("re-parses");
    assert_eq!(cfg, back);
    // Evaluation after the round trip matches direct evaluation.
    for ((name_a, a), (name_b, b)) in cfg
        .to_scenarios()
        .unwrap()
        .iter()
        .zip(back.to_scenarios().unwrap().iter())
    {
        assert_eq!(name_a, name_b);
        assert_eq!(a.estimate(), b.estimate());
    }
}

#[test]
fn sweep_workflow_explores_the_design_space() {
    let path = temp_path("sweep.json");
    fs::write(&path, TABLE6_CONFIG).expect("temp dir writable");
    let out = run(&[
        "sweep".to_owned(),
        path.to_string_lossy().into_owned(),
        "--axis".to_owned(),
        "interface-latency".to_owned(),
        "--from".to_owned(),
        "1".to_owned(),
        "--to".to_owned(),
        "100000".to_owned(),
        "--points".to_owned(),
        "6".to_owned(),
    ])
    .expect("sweep succeeds");
    fs::remove_file(&path).ok();
    assert_eq!(out.lines().count(), 7, "{out}");
    // Speedup decreases monotonically as L grows.
    let speedups: Vec<f64> = out
        .lines()
        .skip(1)
        .map(|l| {
            l.split("speedup ")
                .nth(1)
                .and_then(|s| s.split('x').next())
                .and_then(|s| s.trim().parse().ok())
                .expect("parsable speedup")
        })
        .collect();
    for pair in speedups.windows(2) {
        assert!(pair[1] <= pair[0] + 1e-9, "{speedups:?}");
    }
}

#[test]
fn validate_workflow_runs_the_simulator() {
    let out = run(&["validate".to_owned()]).expect("validate succeeds");
    assert!(out.contains("aes-ni"), "{out}");
    assert!(out.contains("model-vs-sim"), "{out}");
    assert!(out.contains("3.7"), "{out}");
}
