//! Systematic model-vs-simulator agreement: beyond the three case
//! studies, the analytical model and the discrete-event simulator must
//! agree across the full design/strategy grid when the simulator is
//! configured without the unmodeled production effects (no dispatch
//! pollution, ample device capacity so queueing stays negligible).
//!
//! This is the reproduction's strongest internal-consistency check: two
//! independent implementations of the offload semantics — closed-form
//! equations and an event-driven executor — derived separately from §3's
//! description.

use accelerometer_suite::model::units::cycles_per_byte;
use accelerometer_suite::model::{
    estimate, AccelerationStrategy, DriverMode, GranularityCdf, ModelParams, ThreadingDesign,
};
use accelerometer_suite::sim::workload::WorkloadSpec;
use accelerometer_suite::sim::{run_ab, DeviceKind, OffloadConfig, SimConfig};

const CORES: usize = 4;
const O1: f64 = 800.0;

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        non_kernel_cycles: 6_000.0,
        kernels_per_request: 1,
        granularity: GranularityCdf::from_points(vec![
            (128.0, 0.3),
            (512.0, 0.7),
            (2_048.0, 1.0),
        ])
        .expect("valid CDF"),
        cycles_per_byte: cycles_per_byte(2.0),
    }
}

fn control(design: ThreadingDesign) -> SimConfig {
    // Oversubscribe only for Sync-OS, matching the paper's semantics.
    // The model assumes the pool is deep enough that a blocked thread
    // always leaves a ready one behind, so size it to cover the longest
    // offload round trip (the remote 50k-cycle hop over ~7k-cycle
    // requests needs ~9 threads per core).
    let threads = if design == ThreadingDesign::SyncOs {
        CORES * 12
    } else {
        CORES
    };
    SimConfig {
        cores: CORES,
        threads,
        context_switch_cycles: O1,
        horizon: 3e8,
        seed: 11,
        workload: workload(),
        offload: None,
        fault: Default::default(),
        recovery: Default::default(),
    }
}

fn offload(design: ThreadingDesign, strategy: AccelerationStrategy) -> OffloadConfig {
    let (device, interface_latency) = match strategy {
        AccelerationStrategy::OnChip => (DeviceKind::PerCore, 0.0),
        // Generous capacity keeps emergent queueing ≈ 0 so the model's
        // Q = 0 assumption holds.
        AccelerationStrategy::OffChip => (DeviceKind::Shared { servers: CORES * 2 }, 500.0),
        AccelerationStrategy::Remote => (DeviceKind::Unlimited, 50_000.0),
    };
    OffloadConfig {
        design,
        strategy,
        driver: DriverMode::AwaitsAck,
        device,
        peak_speedup: 8.0,
        interface_latency,
        setup_cycles: 50.0,
        dispatch_pollution: 0.0,
        min_offload_bytes: None,
    }
}

fn model_percent(design: ThreadingDesign, strategy: AccelerationStrategy) -> f64 {
    let spec = workload();
    let mean_request = spec.mean_request_cycles();
    let c = 1e9;
    let n = c / mean_request * CORES as f64; // requests per second across cores
    let cfg = offload(design, strategy);
    let params = ModelParams::builder()
        .host_cycles(c * CORES as f64)
        .kernel_fraction(spec.expected_alpha())
        .offloads(n)
        .setup_cycles(cfg.setup_cycles)
        .interface_cycles(cfg.interface_latency)
        .queueing_cycles(0.0)
        .thread_switch_cycles(O1)
        .peak_speedup(cfg.peak_speedup)
        .build()
        .expect("valid parameters");
    estimate(&params, design, strategy, DriverMode::AwaitsAck).throughput_gain_percent()
}

fn simulated_percent(design: ThreadingDesign, strategy: AccelerationStrategy) -> f64 {
    run_ab(&control(design), offload(design, strategy)).speedup_percent()
}

fn check(design: ThreadingDesign, strategy: AccelerationStrategy, tolerance: f64) {
    let model = model_percent(design, strategy);
    let simulated = simulated_percent(design, strategy);
    assert!(
        (model - simulated).abs() < tolerance,
        "{design:?}/{strategy:?}: model {model:.2}% vs simulated {simulated:.2}%"
    );
}

#[test]
fn sync_agreement_across_strategies() {
    check(ThreadingDesign::Sync, AccelerationStrategy::OnChip, 1.0);
    check(ThreadingDesign::Sync, AccelerationStrategy::OffChip, 1.0);
    check(ThreadingDesign::Sync, AccelerationStrategy::Remote, 1.0);
}

#[test]
fn async_same_thread_agreement() {
    check(ThreadingDesign::AsyncSameThread, AccelerationStrategy::OnChip, 1.0);
    check(ThreadingDesign::AsyncSameThread, AccelerationStrategy::OffChip, 1.0);
    check(ThreadingDesign::AsyncSameThread, AccelerationStrategy::Remote, 1.0);
}

#[test]
fn async_no_response_agreement() {
    check(ThreadingDesign::AsyncNoResponse, AccelerationStrategy::OffChip, 1.0);
    check(ThreadingDesign::AsyncNoResponse, AccelerationStrategy::Remote, 1.0);
}

#[test]
fn async_distinct_thread_agreement() {
    check(ThreadingDesign::AsyncDistinctThread, AccelerationStrategy::OffChip, 1.0);
    check(ThreadingDesign::AsyncDistinctThread, AccelerationStrategy::Remote, 1.0);
}

#[test]
fn sync_os_agreement() {
    // Sync-OS has the most scheduler interplay (blocks, wakes, switch
    // pairs); allow slightly wider tolerance for emergent idle gaps.
    check(ThreadingDesign::SyncOs, AccelerationStrategy::OffChip, 1.5);
    check(ThreadingDesign::SyncOs, AccelerationStrategy::Remote, 1.5);
}

/// The ordering the paper's Fig. 20 hinges on — Async ≥ Sync ≥ Sync-OS
/// for an off-chip device with costly thread switches — emerges in both
/// the model and the simulator.
#[test]
fn design_ordering_is_consistent() {
    let strategies = AccelerationStrategy::OffChip;
    let model_sync = model_percent(ThreadingDesign::Sync, strategies);
    let model_async = model_percent(ThreadingDesign::AsyncNoResponse, strategies);
    let model_sync_os = model_percent(ThreadingDesign::SyncOs, strategies);
    assert!(model_async >= model_sync);
    assert!(model_sync >= model_sync_os);

    let sim_sync = simulated_percent(ThreadingDesign::Sync, strategies);
    let sim_async = simulated_percent(ThreadingDesign::AsyncNoResponse, strategies);
    let sim_sync_os = simulated_percent(ThreadingDesign::SyncOs, strategies);
    assert!(sim_async >= sim_sync - 0.3);
    assert!(sim_sync >= sim_sync_os - 0.3);
}
