//! Structural cross-check: the Figs. 11–14 timelines and the §3
//! equations are two renderings of the same semantics, so the host
//! cycles a timeline charges per offload must equal the per-offload
//! overhead the throughput equations charge.

use accelerometer_suite::model::{
    estimate, AccelerationStrategy, Cycles, DriverMode, ModelParams, OffloadOverheads,
    ThreadingDesign, Timeline, TimelineSpec,
};

const KERNEL: f64 = 10_000.0;
const A: f64 = 8.0;

fn overheads() -> OffloadOverheads {
    OffloadOverheads::new(250.0, 700.0, 150.0, 900.0)
}

/// The model's per-offload host charge beyond non-kernel work, recovered
/// from the equations: `(CS/C − (1 − α)) · C / n`.
fn model_host_charge(
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
) -> f64 {
    let c = 1e9;
    let n = 1_000.0;
    let alpha = n * KERNEL / c;
    let params = ModelParams::builder()
        .host_cycles(c)
        .kernel_fraction(alpha)
        .offloads(n)
        .overheads(overheads())
        .peak_speedup(A)
        .build()
        .expect("valid parameters");
    let est = estimate(&params, design, strategy, driver);
    (est.host_cycles_accelerated.get() - (1.0 - alpha) * c) / n
}

/// The timeline's per-offload host charge: setup + blocked + switches
/// (plus nothing else — HostWork segments are overlapped useful work).
fn timeline_host_charge(
    design: ThreadingDesign,
    strategy: AccelerationStrategy,
    driver: DriverMode,
) -> f64 {
    let timeline = Timeline::build(TimelineSpec {
        kernel_cycles: Cycles::new(KERNEL),
        peak_speedup: A,
        overheads: overheads(),
        design,
        strategy,
        driver,
    });
    timeline.host_overhead_cycles().get()
}

#[test]
fn timelines_match_equations_for_every_design() {
    for design in ThreadingDesign::ALL {
        for strategy in AccelerationStrategy::ALL {
            for driver in [DriverMode::AwaitsAck, DriverMode::Posted] {
                let model = model_host_charge(design, strategy, driver);
                let timeline = timeline_host_charge(design, strategy, driver);
                assert!(
                    (model - timeline).abs() < 1e-6,
                    "{design:?}/{strategy:?}/{driver:?}: model charges {model:.1}, timeline {timeline:.1}"
                );
            }
        }
    }
}

#[test]
fn sync_timeline_charge_includes_accelerator_time() {
    let charge = timeline_host_charge(
        ThreadingDesign::Sync,
        AccelerationStrategy::OffChip,
        DriverMode::AwaitsAck,
    );
    // o0 + L + Q + kernel/A = 250 + 700 + 150 + 1250.
    assert!((charge - 2_350.0).abs() < 1e-9, "charge {charge}");
}

#[test]
fn async_remote_timeline_charges_setup_only() {
    let charge = timeline_host_charge(
        ThreadingDesign::AsyncNoResponse,
        AccelerationStrategy::Remote,
        DriverMode::Posted,
    );
    assert!((charge - 250.0).abs() < 1e-9, "charge {charge}");
}
