//! The headline reproduction test: every quantitative claim the paper
//! makes that this repository commits to, checked in one place.

use accelerometer_suite::bench::{figure, render_table, FIGURE_IDS, TABLE_IDS};
use accelerometer_suite::fleet::params::{all_case_studies, all_recommendations};
use accelerometer_suite::fleet::{profile, FunctionalityCategory, ServiceId};
use accelerometer_suite::model::{amdahl, project};

/// §1 / §2.4: "an important ML microservice can speed up by only 49% even
/// if its ML inference takes no time."
#[test]
fn headline_49_percent_claim() {
    let min_inference = [ServiceId::Feed1, ServiceId::Feed2, ServiceId::Ads1, ServiceId::Ads2]
        .iter()
        .map(|&id| profile(id).inference_fraction())
        .fold(f64::INFINITY, f64::min);
    let gain = (amdahl::ideal_speedup(min_inference) - 1.0) * 100.0;
    assert!((gain - 49.0).abs() < 1.0, "headline gain {gain:.1}%");
}

/// Abstract: "microservices spend as few as 18% of CPU cycles executing
/// core application logic."
#[test]
fn headline_18_percent_core_logic() {
    let min_core = ServiceId::CHARACTERIZED
        .iter()
        .map(|&id| profile(id).core_percent())
        .fold(f64::INFINITY, f64::min);
    // Cache2's core (12%) is below Web's 18%; the paper's "as few as 18%"
    // refers to Web's app logic, which we also pin exactly.
    assert!(min_core <= 18.0);
    assert_eq!(profile(ServiceId::Web).core_percent(), 18.0);
}

/// Abstract: caching services spend 52% of cycles sending/receiving I/O;
/// copying/allocating/freeing memory can consume 37% of cycles.
#[test]
fn headline_cache_io_and_memory_claims() {
    let cache2 = profile(ServiceId::Cache2);
    assert_eq!(
        cache2.functionality.percent(FunctionalityCategory::SecureInsecureIo),
        52.0
    );
    let max_memory = ServiceId::CHARACTERIZED
        .iter()
        .map(|&id| {
            profile(id)
                .leaves
                .percent(accelerometer_suite::fleet::LeafCategory::Memory)
        })
        .fold(0.0, f64::max);
    assert_eq!(max_memory, 37.0);
}

/// Table 6: the model's estimates match the paper's three case studies,
/// and the paper's own model-vs-production errors are ≤ 3.7 points.
#[test]
fn table6_model_estimates() {
    let expected = [("aes-ni", 15.7), ("encryption", 8.6), ("inference", 72.39)];
    for (study, (name, pct)) in all_case_studies().iter().zip(expected) {
        assert_eq!(study.name, name);
        let got = study.scenario.estimate().throughput_gain_percent();
        assert!((got - pct).abs() < 0.1, "{name}: {got:.2}% vs {pct}%");
        assert!(study.paper_error_points() <= 3.7 + 1e-9);
    }
}

/// Fig. 20: all eight projection bars (including the paper's reported
/// latency reductions for compression).
#[test]
fn fig20_all_bars() {
    for rec in all_recommendations() {
        for cfg in &rec.configs {
            let p = project(&rec.profile, &cfg.accelerator, cfg.design, cfg.policy).unwrap();
            let got = p.estimate.throughput_gain_percent();
            assert!(
                (got - cfg.paper_speedup_percent).abs() < 0.35,
                "{} {}: {got:.2}% vs paper {:.2}%",
                rec.name,
                cfg.label,
                cfg.paper_speedup_percent
            );
            if cfg.label == "Off-chip:Async" {
                let lat = p.estimate.latency_gain_percent();
                assert!(
                    (lat - cfg.paper_latency_percent.unwrap()).abs() < 0.35,
                    "{} latency {lat:.2}%",
                    rec.name
                );
            }
        }
    }
}

/// §5: "64.2% of compressions are ≥ 425 B" — the CDF and break-even
/// machinery recover the paper's selection exactly.
#[test]
fn compression_selection_fractions() {
    let rec = &all_recommendations()[0];
    let sync = &rec.configs[1];
    let p = project(&rec.profile, &sync.accelerator, sync.design, sync.policy).unwrap();
    assert!((p.selection.fraction - 0.642).abs() < 0.005);
    assert!((p.breakeven.threshold().unwrap().get() - 425.0).abs() < 1.0);
}

/// Every table and figure regenerates (Table 6 exercised separately by
/// the simulator validation suite since it runs A/B experiments).
#[test]
fn all_tables_and_figures_regenerate() {
    for id in TABLE_IDS.iter().filter(|id| **id != "table6") {
        assert!(render_table(id).is_some(), "{id}");
    }
    for id in FIGURE_IDS {
        let text = figure(id).unwrap_or_else(|| panic!("{id}"));
        assert!(!text.is_empty());
    }
}
